"""PHP code templates for seeded flows and benign noise.

Every template returns a :class:`Fragment`: the PHP lines to splice into
a file plus the offset of the sensitive sink within them, so the
generator can record the exact ground-truth sink line.  Templates are
written so their detectability by each tool is known *by construction*
(see :mod:`repro.corpus.spec` for the region taxonomy) — e.g. a region-b
flow lives in a function no plugin code calls, which phpSAFE and RIPS
analyze but Pixy does not.

Noise templates emit realistic but certifiably clean code: nothing in
them may trip any of the three tools (including RIPS's pessimistic
unknown-function propagation and Pixy's register_globals model), so
noise contributes true negatives only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config.vulnerability import InputVector


@dataclass(frozen=True)
class Fragment:
    """PHP lines plus the index (0-based) of the sink line, -1 if none."""

    lines: List[str]
    sink_offset: int = -1


def _ident(spec_id: str) -> str:
    """A PHP-safe identifier derived from a spec id."""
    return spec_id.replace("-", "_").replace(".", "_").lower()


_SUPERGLOBAL = {
    InputVector.GET: "$_GET",
    InputVector.POST: "$_POST",
    InputVector.COOKIE: "$_COOKIE",
    InputVector.REQUEST: "$_REQUEST",
}


def superglobal_expr(vector: InputVector, key: str) -> str:
    """``$_GET['key']``-style source expression for a direct vector."""
    return f"{_SUPERGLOBAL[vector]}['{key}']"


# ---------------------------------------------------------------------------
# True-positive templates (regions a, b, d, e_*, f, g)
# ---------------------------------------------------------------------------


def direct_echo_main(spec_id: str, vector: InputVector) -> Fragment:
    """Region a / d: main-flow superglobal → echo.  Found by every tool
    that analyzes the file (region d files defeat phpSAFE)."""
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"msg_{uid}")
    return Fragment(
        lines=[
            f"$msg_{uid} = {source};",
            f"echo '<div class=\"notice\">' . $msg_{uid} . '</div>';",
        ],
        sink_offset=1,
    )


def direct_echo_uncalled(spec_id: str, vector: InputVector) -> Fragment:
    """Region b: superglobal → echo inside a never-called function.

    phpSAFE and RIPS analyze uncalled plugin entry points; Pixy does not
    (paper Section V.A).
    """
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"opt_{uid}")
    return Fragment(
        lines=[
            f"function hook_{uid}_render() {{",
            f"    $opt_{uid} = {source};",
            f"    echo '<input type=\"text\" value=\"' . $opt_{uid} . '\">';",
            "}",
        ],
        sink_offset=2,
    )


def file_read_echo_uncalled(spec_id: str) -> Fragment:
    """Region b, File vector: fgets → echo in an uncalled function."""
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"function hook_{uid}_tail() {{",
            f"    $fp_{uid} = fopen(dirname(__FILE__) . '/log_{uid}.txt', 'r');",
            f"    $line_{uid} = fgets($fp_{uid}, 256);",
            f"    echo '<pre>' . $line_{uid} . '</pre>';",
            f"    fclose($fp_{uid});",
            "}",
        ],
        sink_offset=3,
    )


def db_read_echo_uncalled(spec_id: str) -> Fragment:
    """Region f, DB vector: procedural mysql_* read → echo, uncalled.

    RIPS-only when placed in a phpSAFE-failed file (Pixy skips uncalled
    functions even though mysql_fetch_assoc is in its knowledge base).
    """
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"function legacy_{uid}_row() {{",
            f"    $res_{uid} = mysql_query('SELECT title FROM entries_{uid}');",
            f"    $row_{uid} = mysql_fetch_assoc($res_{uid});",
            f"    echo '<td>' . $row_{uid}['title'] . '</td>';",
            "}",
        ],
        sink_offset=3,
    )


def wpdb_results_echo(spec_id: str) -> Fragment:
    """Region e_oop, DB vector: the paper's mail-subscribe-list example.

    ``$wpdb->get_results`` rows echoed unescaped — detectable only with
    OOP + WordPress knowledge (Section III.E).
    """
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"function spec_{uid}_list() {{",
            "    global $wpdb;",
            f"    $rows_{uid} = $wpdb->get_results(\"SELECT * FROM \" . $wpdb->prefix . \"tbl_{uid}\");",
            f"    foreach ($rows_{uid} as $row_{uid}) {{",
            f"        echo '<td>' . $row_{uid}->label . '</td>';",
            "    }",
            "}",
        ],
        sink_offset=4,
    )


def property_flow_class(spec_id: str, vector: InputVector) -> Fragment:
    """Region e_oop, direct vector: superglobal stored in an object
    property by one method, echoed by another (encapsulated flow)."""
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"pref_{uid}")
    return Fragment(
        lines=[
            f"class Spec_{uid}_Widget {{",
            "    public $payload;",
            "    public function collect() {",
            f"        $this->payload = {source};",
            "    }",
            "    public function render() {",
            "        echo '<span>' . $this->payload . '</span>';",
            "    }",
            "}",
        ],
        sink_offset=6,
    )


def wp_option_echo(spec_id: str) -> Fragment:
    """Region e_wp, DB vector: ``get_option`` → echo, procedural.

    Only a WordPress-aware tool knows ``get_option`` returns
    database-resident (user-writable) data.
    """
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"$text_{uid} = get_option('banner_{uid}');",
            f"echo '<p class=\"banner\">' . $text_{uid} . '</p>';",
        ],
        sink_offset=1,
    )


def wpdb_query_sqli(spec_id: str, vector: InputVector) -> Fragment:
    """Region e_sqli: superglobal interpolated into ``$wpdb->query``."""
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"slot_{uid}")
    return Fragment(
        lines=[
            f"$slot_{uid} = {source};",
            f"$wpdb->query(\"UPDATE \" . $wpdb->prefix . \"tbl_{uid} SET hits = hits + 1 WHERE slot = '\" . $slot_{uid} . \"'\");",
        ],
        sink_offset=1,
    )


def register_globals_echo(spec_id: str) -> Fragment:
    """Region g: echo of a variable never initialized — exploitable
    under ``register_globals=1`` (Pixy's specialty, paper Section V.A)."""
    uid = _ident(spec_id)
    return Fragment(
        lines=[f"echo '<body class=\"' . $skin_{uid} . '\">';"],
        sink_offset=0,
    )


# ---------------------------------------------------------------------------
# False-positive bait templates (expert-verified as not exploitable)
# ---------------------------------------------------------------------------


def fp_guarded_echo(spec_id: str, vector: InputVector) -> Fragment:
    """fp_shared: capability- and nonce-gated admin echo.

    Taint analysis cannot see the guard, so phpSAFE and RIPS report it;
    the expert marks it unexploitable (admin-only, CSRF-protected).
    """
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"val_{uid}")
    return Fragment(
        lines=[
            f"function admin_{uid}_panel() {{",
            "    if (!current_user_can('manage_options')) {",
            "        return;",
            "    }",
            f"    check_admin_referer('panel_{uid}');",
            f"    echo '<input value=\"' . {source} . '\">';",
            "}",
        ],
        sink_offset=5,
    )


def fp_wpdb_internal_table(spec_id: str) -> Fragment:
    """fp_ps: ``$wpdb->get_var`` from a table end users cannot write.

    Only phpSAFE sees the flow at all; the expert rules it out because
    the source table holds installer-controlled data.
    """
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"$ver_{uid} = $wpdb->get_var(\"SELECT meta_value FROM \" . $wpdb->prefix . \"system_meta_{uid} WHERE meta_key = 'schema'\");",
            f"echo '<em>v' . $ver_{uid} . '</em>';",
        ],
        sink_offset=1,
    )


def fp_esc_html_echo(spec_id: str, vector: InputVector) -> Fragment:
    """fp_rips: a WordPress-escaped echo.  phpSAFE knows ``esc_html``;
    RIPS does not and reports the flow anyway."""
    uid = _ident(spec_id)
    source = superglobal_expr(vector, f"name_{uid}")
    return Fragment(
        lines=[
            f"function widget_{uid}_badge() {{",
            f"    echo '<b>' . esc_html({source}) . '</b>';",
            "}",
        ],
        sink_offset=1,
    )


def fp_uninitialized_pixy(spec_id: str) -> Fragment:
    """fp_pixy: a global initialized by an (uncalled) setup hook.

    Pixy neither analyzes the uncalled initializer nor sees class-based
    setups, so under its register_globals model the later echo looks
    attacker-controlled; phpSAFE/RIPS see the clean initialization.
    """
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"function setup_{uid}_defaults() {{",
            f"    global $cfg_{uid};",
            f"    $cfg_{uid} = 'standard';",
            "}",
            f"echo '<div data-mode=\"' . $cfg_{uid} . '\"></div>';",
        ],
        sink_offset=4,
    )


def fp_sqli_whitelist(spec_id: str) -> Fragment:
    """fp_sqli_ps: ORDER BY column constrained by an ``in_array``
    whitelist — invisible to taint analysis, safe in practice."""
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"$col_{uid} = $_GET['sort_{uid}'];",
            f"if (!in_array($col_{uid}, array('title', 'created'))) {{",
            f"    $col_{uid} = 'title';",
            "}",
            f"$wpdb->query(\"SELECT id FROM \" . $wpdb->prefix . \"items_{uid} ORDER BY \" . $col_{uid});",
        ],
        sink_offset=4,
    )


def fp_sqli_absint_rips(spec_id: str) -> Fragment:
    """fp_sqli_rips: query bounded by WordPress's ``absint``.  RIPS does
    not know ``absint`` and flags the query; phpSAFE filters it."""
    uid = _ident(spec_id)
    return Fragment(
        lines=[
            f"function stats_{uid}_page() {{",
            f"    mysql_query('SELECT * FROM stats LIMIT ' . absint($_GET['n_{uid}']));",
            "}",
        ],
        sink_offset=1,
    )


# ---------------------------------------------------------------------------
# Noise (clean for all three tools)
# ---------------------------------------------------------------------------


def noise_helper_function(uid: str) -> Fragment:
    """An uncalled utility that sanitizes everything it touches."""
    return Fragment(
        lines=[
            f"function util_{uid}_format($items) {{",
            f"    $out_{uid} = array();",
            f"    foreach ($items as $key_{uid} => $value_{uid}) {{",
            f"        $out_{uid}[] = strtoupper($key_{uid}) . ': ' . intval($value_{uid});",
            "    }",
            f"    return implode(', ', $out_{uid});",
            "}",
        ]
    )


def noise_sanitized_echo(uid: str) -> Fragment:
    """Main-flow output that every tool agrees is clean."""
    return Fragment(
        lines=[
            f"$stamp_{uid} = date('Y-m-d H:i');",
            f"echo '<small>generated ' . $stamp_{uid} . '</small>';",
            f"echo '<i>' . htmlentities($_GET['ref_{uid}']) . '</i>';",
        ]
    )


def noise_class(uid: str) -> Fragment:
    """A clean settings-holder class (for OOP plugins)."""
    return Fragment(
        lines=[
            f"class Util_{uid}_Settings {{",
            "    public $values = array();",
            "    public function put($key, $value) {",
            "        $this->values[sanitize_key($key)] = intval($value);",
            "    }",
            "    public function get($key, $fallback = 0) {",
            "        if (isset($this->values[$key])) {",
            "            return $this->values[$key];",
            "        }",
            "        return $fallback;",
            "    }",
            "}",
        ]
    )


def noise_loop_block(uid: str) -> Fragment:
    """Arithmetic churn: parser food with zero taint relevance."""
    return Fragment(
        lines=[
            f"$total_{uid} = 0;",
            f"for ($i_{uid} = 0; $i_{uid} < 10; $i_{uid}++) {{",
            f"    $total_{uid} += $i_{uid} * 3;",
            "}",
            f"$label_{uid} = 'sum-' . $total_{uid};",
        ]
    )


def pixy_fatal_block(uid: str) -> Fragment:
    """PHP-5 construct Pixy cannot parse (try/catch): placing one of
    these in a file makes the Pixy-like tool fail that file."""
    return Fragment(
        lines=[
            f"function compat_{uid}_probe() {{",
            "    try {",
            f"        $probe_{uid} = strlen('feature-test');",
            f"        return $probe_{uid} > 0;",
            "    } catch (Exception $err) {",
            "        return false;",
            "    }",
            "}",
        ]
    )


def pixy_warning_block(uid: str) -> Fragment:
    """PHP-5 modifier Pixy only warns about (file still analyzed)."""
    return Fragment(
        lines=[
            f"final class Compat_{uid}_Flag {{",
            "    public $enabled = true;",
            "}",
        ]
    )


def biglib_function(uid: str, index: int, payload: str) -> Fragment:
    """One entry of a generated data library: byte-heavy, node-light.

    Used to build the oversized include closures that exhaust phpSAFE's
    analysis budget (the paper's Section V.E failures).
    """
    return Fragment(
        lines=[
            f"function lib_{uid}_chunk_{index}() {{",
            f"    return '{payload}';",
            "}",
        ]
    )

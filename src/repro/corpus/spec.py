"""Corpus specification: seeded vulnerabilities and ground truth.

The paper's dataset is 35 real WordPress plugins in 2012 and 2014
versions, with every tool report manually verified by a security expert.
We cannot ship those plugins, so the corpus generator seeds synthetic
plugins from *specs*: each :class:`SeededSpec` describes one flow — a
real vulnerability or a deliberate false-alarm bait — chosen from a
template whose detectability by each tool is known by construction.
The generator records where each spec landed (file and sink line) in a
:class:`GroundTruth` manifest, which replaces the expert: a reported
finding matching a vulnerable entry is a TP, anything else an FP.

Regions name the Venn-diagram areas of Fig. 2 (detector sets):

== ======================== ==========================================
a  phpSAFE ∩ RIPS ∩ Pixy    procedural, main flow, 2007-era source
b  phpSAFE ∩ RIPS           procedural but in an uncalled function
d  RIPS ∩ Pixy              main flow of a file phpSAFE fails to parse
e  phpSAFE only             OOP / WordPress-API mediated flows
f  RIPS only                uncalled functions in phpSAFE-failed files
g  Pixy only                register_globals-style uninitialized reads
== ======================== ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..config.vulnerability import InputVector, VulnKind

PHPSAFE = "phpSAFE"
RIPS = "RIPS"
PIXY = "Pixy"

#: Detector sets per region (true-positive regions).
REGION_DETECTORS: Dict[str, FrozenSet[str]] = {
    "a": frozenset({PHPSAFE, RIPS, PIXY}),
    "b": frozenset({PHPSAFE, RIPS}),
    "d": frozenset({RIPS, PIXY}),
    "e_oop": frozenset({PHPSAFE}),
    "e_wp": frozenset({PHPSAFE}),
    "e_sqli": frozenset({PHPSAFE}),
    "f": frozenset({RIPS}),
    "g": frozenset({PIXY}),
    # false-positive bait regions
    "fp_shared": frozenset({PHPSAFE, RIPS}),
    "fp_ps": frozenset({PHPSAFE}),
    "fp_rips": frozenset({RIPS}),
    "fp_pixy": frozenset({PIXY}),
    "fp_sqli_ps": frozenset({PHPSAFE}),
    "fp_sqli_rips": frozenset({RIPS}),
}

#: Regions whose specs are real vulnerabilities (ground truth positive).
VULNERABLE_REGIONS = frozenset({"a", "b", "d", "e_oop", "e_wp", "e_sqli", "f", "g"})

#: Regions that require OOP resolution (paper's Section III.E claim).
OOP_REGIONS = frozenset({"e_oop", "e_sqli"})


@dataclass(frozen=True)
class SeededSpec:
    """One flow to seed: a vulnerability or a false-alarm bait."""

    spec_id: str
    kind: VulnKind
    vector: InputVector
    region: str
    carried: bool = False  # present identically in both plugin versions

    @property
    def is_vulnerable(self) -> bool:
        return self.region in VULNERABLE_REGIONS

    @property
    def via_oop(self) -> bool:
        return self.region in OOP_REGIONS

    @property
    def detectors(self) -> FrozenSet[str]:
        return REGION_DETECTORS[self.region]

    @property
    def needs_failed_file(self) -> bool:
        """Must live in a file phpSAFE cannot analyze (regions d and f)."""
        return self.region in ("d", "f")


@dataclass(frozen=True)
class GroundTruthEntry:
    """Where a spec landed in the generated corpus."""

    spec: SeededSpec
    plugin: str
    version: str
    file: str
    line: int  # line of the sensitive sink

    @property
    def location(self) -> Tuple[str, str, int]:
        """Matching key: (kind, file, sink line) within the plugin."""
        return (self.spec.kind.value, self.file, self.line)


@dataclass
class GroundTruth:
    """The expert's answer sheet for one generated corpus version."""

    version: str
    entries: List[GroundTruthEntry] = field(default_factory=list)
    _by_location: Dict[Tuple[str, Tuple[str, str, int]], GroundTruthEntry] = field(
        default_factory=dict, repr=False
    )

    def add(self, entry: GroundTruthEntry) -> None:
        self.entries.append(entry)
        self._by_location[(entry.plugin, entry.location)] = entry

    def lookup(
        self, plugin: str, kind: str, file: str, line: int
    ) -> Optional[GroundTruthEntry]:
        return self._by_location.get((plugin, (kind, file, line)))

    def vulnerabilities(self) -> Iterator[GroundTruthEntry]:
        """All entries that are real vulnerabilities."""
        return (entry for entry in self.entries if entry.spec.is_vulnerable)

    def baits(self) -> Iterator[GroundTruthEntry]:
        """All entries seeded as false-alarm bait."""
        return (entry for entry in self.entries if not entry.spec.is_vulnerable)

    def vulnerable_count(self) -> int:
        return sum(1 for _ in self.vulnerabilities())

    def of_plugin(self, plugin: str) -> List[GroundTruthEntry]:
        return [entry for entry in self.entries if entry.plugin == plugin]

    def carried_ids(self) -> FrozenSet[str]:
        return frozenset(
            entry.spec.spec_id
            for entry in self.entries
            if entry.spec.carried and entry.spec.is_vulnerable
        )

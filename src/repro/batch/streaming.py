"""Memory-bounded streaming evaluation (ROADMAP item 5).

The classic batch path materializes every plugin, accumulates one
:class:`~repro.core.results.ToolReport` per plugin, and merges them at
the end — three unbounded growth axes that cap the scanner far below
million-LOC corpora.  :func:`stream_scan` removes all three:

- **corpus**: plugins are consumed from an *iterator* (lazily
  generated or loaded), at most one alive at a time;
- **artifacts**: the parse/IR/summary cache is byte-capped
  (``max_cache_bytes``) and each plugin's file models are eagerly
  spilled the moment its analysis completes — huge models never wait
  for LRU pressure; token lists are dropped at parse time
  (``spill_tokens``), halving the per-file footprint;
- **results**: findings stream to an on-disk JSONL sink
  (:class:`~repro.core.results.JsonlFindingSink`) and the report is
  dropped; SARIF export and telemetry read the stream back
  plugin-at-a-time via :func:`~repro.core.results.stream_reports`.

Soundness: every cache tier is content-addressed, so eviction/spill can
only cost recomputation, never change a result — the streaming-vs-
accumulating parity test (identical finding signatures at scale 0.25)
enforces this, and ``BENCH_scale.json`` records the RSS bound it buys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..core.cache import ModelCache, content_key
from ..core.phpsafe import PhpSafe, PhpSafeOptions
from ..core.results import JsonlFindingSink
from ..plugin import Plugin

#: default in-memory artifact budget for streaming scans (64 MB keeps a
#: working set of warm models while staying far below any tier's RSS
#: contract; raise it to trade memory for fewer re-parses)
DEFAULT_MAX_CACHE_BYTES = 64 * 1024 * 1024


def streaming_options(base: Optional[PhpSafeOptions] = None) -> PhpSafeOptions:
    """Streaming variant of ``base`` (default options when omitted):
    identical analysis semantics, token spilling on."""
    from dataclasses import replace

    options = base or PhpSafeOptions()
    return replace(options, spill_tokens=True)


@dataclass
class StreamingSummary:
    """Running totals of one streaming scan — O(1) memory by design.

    This is deliberately *not* a :class:`ScanTelemetry`: per-plugin
    telemetry rows would re-introduce linear growth in corpus size.
    """

    sink_path: str = ""
    plugins: int = 0
    files: int = 0
    loc: int = 0
    findings: int = 0
    failures: int = 0
    incidents: int = 0
    files_skipped: int = 0
    loc_skipped: int = 0
    seconds: float = 0.0
    #: estimated bytes released by eager per-plugin spills
    spilled_bytes: int = 0
    #: high-water mark of the artifact cache's estimated bytes
    peak_cache_bytes: int = 0
    #: final cache occupancy snapshot (:meth:`ModelCache.occupancy`)
    cache: Dict[str, object] = field(default_factory=dict)

    @property
    def loc_per_second(self) -> float:
        return self.loc / self.seconds if self.seconds else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sink_path": self.sink_path,
            "plugins": self.plugins,
            "files": self.files,
            "loc": self.loc,
            "findings": self.findings,
            "failures": self.failures,
            "incidents": self.incidents,
            "files_skipped": self.files_skipped,
            "loc_skipped": self.loc_skipped,
            "seconds": round(self.seconds, 6),
            "loc_per_second": round(self.loc_per_second, 1),
            "spilled_bytes": self.spilled_bytes,
            "peak_cache_bytes": self.peak_cache_bytes,
            "cache": dict(self.cache),
        }


def stream_scan(
    plugins: Iterable[Plugin],
    sink_path: str,
    options: Optional[PhpSafeOptions] = None,
    max_cache_bytes: int = DEFAULT_MAX_CACHE_BYTES,
    max_cache_entries: int = 4096,
    cache: Optional[ModelCache] = None,
) -> StreamingSummary:
    """Scan ``plugins`` one at a time, streaming findings to
    ``sink_path``; returns the run's :class:`StreamingSummary`.

    ``plugins`` may be any iterable — pass a generator to keep the
    corpus itself out of memory.  ``options`` defaults to
    :func:`streaming_options` (token spilling on); an explicit options
    object is honoured as-is so harnesses control every analysis knob.
    ``cache`` overrides the default byte-capped in-memory cache (e.g.
    with a :class:`~repro.batch.diskcache.DiskModelCache` so spilled
    artifacts demote to disk instead of vanishing).
    """
    if options is None:
        options = streaming_options()
    if cache is None:
        cache = ModelCache(
            max_entries=max_cache_entries, max_bytes=max_cache_bytes
        )
    tool = PhpSafe(options=options, cache=cache, use_process_cache=False)
    variant = "recover" if options.recover else ""

    summary = StreamingSummary(sink_path=sink_path)
    started = time.perf_counter()
    with JsonlFindingSink(sink_path, tool=tool.name) as sink:
        for plugin in plugins:
            report = tool.analyze(plugin)
            # the reviewer variable dump is the report's heaviest field
            # and has no streaming consumer — drop it before accounting
            report.variables.clear()
            sink.write_report(report)
            summary.plugins += 1
            summary.files += report.files_analyzed
            summary.loc += report.loc_analyzed
            summary.findings += len(report.findings)
            summary.failures += len(report.failures)
            summary.incidents += len(report.incidents)
            summary.files_skipped += report.files_skipped
            summary.loc_skipped += report.loc_skipped
            summary.peak_cache_bytes = max(
                summary.peak_cache_bytes, cache.current_bytes
            )
            # eager spill: this plugin's file models are dead weight now
            summary.spilled_bytes += cache.spill(
                content_key(path, source, variant)
                for path, source in plugin.iter_files()
            )
    summary.seconds = time.perf_counter() - started
    summary.cache = cache.occupancy()
    return summary

"""Parallel batch scanning with per-plugin crash/timeout isolation.

Per-plugin analysis is embarrassingly parallel (every plugin is an
independent file set), so the scheduler fans a corpus out over a
``ProcessPoolExecutor`` of analyzer workers.  Robustness follows the
paper's Section V.E incident taxonomy: a worker that raises, exceeds
its deadline or dies outright yields a ``FileFailure(file="<plugin>",
completed=False)`` on that plugin's report instead of aborting the
batch.

Isolation mechanics:

- *Exceptions* are caught inside the worker and returned as a failure
  report.
- *Deadlines* are enforced in the worker with a ``SIGALRM`` interval
  timer, so a runaway plugin is interrupted mid-analysis.
- *Process death* (segfault, ``os._exit``) breaks the whole pool; the
  scheduler then restarts and re-runs each unresolved plugin in its own
  single-worker pool, which pins the crash on the guilty plugin while
  every innocent one still completes.

Workers are described by a picklable :class:`ToolSpec` (not a live tool
instance) and share a persistent :class:`DiskModelCache` when a cache
directory is configured, so repeated scans never re-parse unchanged
files.  ``jobs=1`` runs the identical worker pipeline in-process — same
findings, no pool overhead.
"""

from __future__ import annotations

import functools
import importlib
import signal
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import ModelCache
from ..core.phpsafe import PhpSafe, PhpSafeOptions
from ..core.results import FileFailure, ToolReport, finding_signatures
from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..core.tool import AnalyzerTool
from ..plugin import Plugin
from .diskcache import DiskModelCache
from .telemetry import PluginScanStats, ScanTelemetry

#: profile names ToolSpec can rebuild from options alone; named base
#: profiles + rule packs are also rebuildable (workers re-resolve them
#: from ``options.profile_name`` / ``options.rule_packs``)
_REBUILDABLE_PHPSAFE_PROFILES = ("wordpress", "generic-php")


@dataclass(frozen=True)
class ToolSpec:
    """Picklable recipe for constructing an analyzer inside a worker.

    ``name`` is a registry key (``"phpsafe"``, ``"rips"``, ``"pixy"``)
    or a ``"module:qualname"`` reference to any :class:`AnalyzerTool`
    subclass with a no-argument constructor.
    """

    name: str = "phpsafe"
    options: Optional[PhpSafeOptions] = None

    def build(self, cache: Optional[ModelCache] = None) -> AnalyzerTool:
        if self.name == "phpsafe":
            return PhpSafe(options=self.options, cache=cache)
        if self.name == "rips":
            from ..baselines import RipsLike

            return RipsLike()
        if self.name == "pixy":
            from ..baselines import PixyLike

            return PixyLike()
        if ":" in self.name:
            module_name, qualname = self.name.split(":", 1)
            tool_cls = importlib.import_module(module_name)
            for part in qualname.split("."):
                tool_cls = getattr(tool_cls, part)
            return tool_cls()  # type: ignore[operator]
        raise ValueError(f"unknown tool spec {self.name!r}")

    @classmethod
    def from_tool(cls, tool: AnalyzerTool) -> Optional["ToolSpec"]:
        """Capture a live tool instance, or ``None`` when it cannot be
        reconstructed in a worker (custom profile objects)."""
        from ..baselines import PixyLike, RipsLike

        if isinstance(tool, PhpSafe):
            options = tool.options
            if options.profile_name or options.rule_packs:
                # options-driven profiles (named base + rule packs) are
                # re-resolved in the worker; reject only hand-built
                # profile objects that the options cannot reproduce
                from ..rules import resolve_profile

                expected = resolve_profile(options).name
            else:
                expected = (
                    "wordpress" if options.wordpress_config else "generic-php"
                )
            if tool.profile.name != expected:
                return None
            return cls(name="phpsafe", options=options)
        if isinstance(tool, RipsLike):
            return cls(name="rips") if tool.profile.name == "rips" else None
        if isinstance(tool, PixyLike):
            return cls(name="pixy") if tool.profile.name == "pixy-2007" else None
        return None


@dataclass
class BatchOptions:
    """Knobs of one batch scan."""

    #: worker processes; 1 = run the worker pipeline in-process
    jobs: int = 1
    #: per-plugin deadline in seconds (None = no deadline)
    timeout: Optional[float] = None
    #: persistent parse-cache directory (None = per-process memory cache)
    cache_dir: Optional[str] = None
    #: memory-LRU bound of each worker's cache
    max_entries: int = 4096


# -- worker side (runs in the child processes) ------------------------------

_worker_tool: Optional[AnalyzerTool] = None
_worker_timeout: Optional[float] = None


class _ScanDeadline(BaseException):
    """Raised inside a worker when the per-plugin deadline fires.

    Derives from ``BaseException`` so the fault-tolerant pipeline's
    per-unit ``except Exception`` boundaries cannot swallow the alarm —
    the deadline must abort the whole plugin scan, not degrade to a
    recovered unit incident.
    """


def _on_alarm(signum, frame):  # pragma: no cover - fires asynchronously
    raise _ScanDeadline()


def _init_worker(spec: ToolSpec, options: BatchOptions) -> None:
    """Pool initializer: build the tool once per worker process."""
    global _worker_tool, _worker_timeout
    cache: Optional[ModelCache] = None
    if options.cache_dir:
        cache = DiskModelCache(options.cache_dir, max_entries=options.max_entries)
    elif spec.name == "phpsafe":
        cache = ModelCache(max_entries=options.max_entries)
    _worker_tool = spec.build(cache=cache)
    _worker_timeout = options.timeout
    signal.signal(signal.SIGALRM, _on_alarm)


#: worker return value: (report, seconds, outcome, cache-stat delta of
#: (hits, misses, disk_hits, corrupt, summary_hits, summary_misses,
#: summary_stale))
_TaskResult = Tuple[ToolReport, float, str, Tuple[int, ...]]


def _failure_report(tool_name: str, plugin_slug: str, reason: str) -> ToolReport:
    report = ToolReport(tool=tool_name, plugin=plugin_slug)
    report.failures.append(
        FileFailure(file="<plugin>", reason=reason, completed=False)
    )
    report.incidents.append(
        Incident(
            stage=IncidentStage.ANALYSIS,
            severity=IncidentSeverity.FATAL,
            file="<plugin>",
            reason=reason,
            recovered=False,
        )
    )
    return report


def _scan_one(payload: Tuple[str, str, Dict[str, str]]) -> _TaskResult:
    """Analyze one plugin inside a worker, isolating failures."""
    name, version, files = payload
    plugin = Plugin(name=name, version=version, files=files)
    tool = _worker_tool
    assert tool is not None, "worker used before initialization"
    cache = getattr(tool, "cache", None)
    stats_before = _cache_stats(cache)
    outcome = "ok"
    start = time.perf_counter()
    if _worker_timeout:
        signal.setitimer(signal.ITIMER_REAL, _worker_timeout)
    try:
        report = tool.analyze(plugin)
    except _ScanDeadline:
        outcome = "timeout"
        report = _failure_report(
            tool.name,
            plugin.slug,
            f"scan deadline of {_worker_timeout:g}s exceeded",
        )
    except Exception as error:
        outcome = "error"
        report = _failure_report(
            tool.name, plugin.slug, f"worker exception: {error!r}"
        )
    finally:
        if _worker_timeout:
            signal.setitimer(signal.ITIMER_REAL, 0)
    report.seconds = time.perf_counter() - start
    # the reviewer variable dump is large and holds analysis-internal
    # objects; don't ship it over the result pickle channel
    report.variables = {}
    stats_after = _cache_stats(cache)
    delta = tuple(after - before for after, before in zip(stats_after, stats_before))
    return report, report.seconds, outcome, delta


#: rescan worker return value: ``_TaskResult`` plus the new per-file
#: digest manifest and the rescan-stats dict
_RescanResult = Tuple[
    ToolReport, float, str, Tuple[int, ...], Optional[Dict[str, object]],
    Dict[str, object],
]


def _rescan_one(
    payload: Tuple[str, str, Dict[str, str], Optional[Dict[str, object]]]
) -> _RescanResult:
    """Diff-aware variant of :func:`_scan_one` for the service workers.

    Runs :meth:`PhpSafe.rescan` against the prior manifest (``None``
    forces a full tracked scan that still produces a manifest for the
    next submission); tools without a rescan path analyze normally and
    return no manifest.
    """
    name, version, files, manifest = payload
    plugin = Plugin(name=name, version=version, files=files)
    tool = _worker_tool
    assert tool is not None, "worker used before initialization"
    cache = getattr(tool, "cache", None)
    stats_before = _cache_stats(cache)
    outcome = "ok"
    new_manifest: Optional[Dict[str, object]] = None
    rescan_stats: Dict[str, object] = {}
    start = time.perf_counter()
    if _worker_timeout:
        signal.setitimer(signal.ITIMER_REAL, _worker_timeout)
    try:
        if hasattr(tool, "rescan"):
            report, new_manifest, stats = tool.rescan(plugin, manifest)
            rescan_stats = stats.to_dict()
        else:
            report = tool.analyze(plugin)
    except _ScanDeadline:
        outcome = "timeout"
        new_manifest = None
        report = _failure_report(
            tool.name,
            plugin.slug,
            f"scan deadline of {_worker_timeout:g}s exceeded",
        )
    except Exception as error:
        outcome = "error"
        new_manifest = None
        report = _failure_report(
            tool.name, plugin.slug, f"worker exception: {error!r}"
        )
    finally:
        if _worker_timeout:
            signal.setitimer(signal.ITIMER_REAL, 0)
    report.seconds = time.perf_counter() - start
    report.variables = {}
    stats_after = _cache_stats(cache)
    delta = tuple(after - before for after, before in zip(stats_after, stats_before))
    return report, report.seconds, outcome, delta, new_manifest, rescan_stats


def _cache_stats(cache: Optional[ModelCache]) -> Tuple[int, ...]:
    """Current cache counters, parse tier then summary tier."""
    if cache is None:
        return (0,) * 7
    return (
        cache.stats.hits,
        cache.stats.misses,
        cache.stats.disk_hits,
        cache.stats.corrupt,
        cache.summary_stats.hits,
        cache.summary_stats.misses,
        cache.summary_stats.stale,
    )


# -- scheduler side ---------------------------------------------------------


@dataclass
class BatchResult:
    """Reports (in input order) plus the run's telemetry."""

    reports: List[ToolReport]
    telemetry: ScanTelemetry

    def merged_report(self) -> Optional[ToolReport]:
        """Whole-corpus totals (plugin-scoped finding dedup)."""
        if not self.reports:
            return None
        return functools.reduce(ToolReport.merged, self.reports)

    def finding_signatures(self):
        """Canonical finding-signature set of the whole batch — the
        value the differential harness compares across configurations
        (see :func:`repro.core.results.finding_signatures`)."""
        return finding_signatures(self.reports)


class BatchScanner:
    """Fans per-plugin analysis out over worker processes."""

    def __init__(
        self,
        spec: Optional[ToolSpec] = None,
        options: Optional[BatchOptions] = None,
    ) -> None:
        self.spec = spec or ToolSpec()
        self.options = options or BatchOptions()

    def scan(self, plugins: Sequence[Plugin]) -> BatchResult:
        plugins = list(plugins)
        telemetry = ScanTelemetry(jobs=max(1, self.options.jobs))
        start = time.perf_counter()
        if self.options.jobs <= 1:
            results = self._scan_in_process(plugins)
        else:
            results = self._scan_parallel(plugins, telemetry)
        telemetry.wall_seconds = time.perf_counter() - start
        reports: List[ToolReport] = []
        for plugin, (report, seconds, outcome, delta) in zip(plugins, results):
            if outcome == "timeout":
                telemetry.timeouts += 1
            elif outcome in ("crashed", "error"):
                telemetry.crashes += 1
            telemetry.record(
                PluginScanStats(
                    plugin=plugin.slug,
                    seconds=seconds,
                    files=report.files_analyzed,
                    loc=report.loc_analyzed,
                    findings=len(report.findings),
                    failures=len(report.failures),
                    incidents=len(report.incidents),
                    recovered=report.recovered_count,
                    files_skipped=report.files_skipped,
                    loc_skipped=report.loc_skipped,
                    cache_hits=delta[0],
                    cache_misses=delta[1],
                    disk_hits=delta[2],
                    cache_corrupt=delta[3],
                    summary_hits=delta[4] if len(delta) > 4 else 0,
                    summary_misses=delta[5] if len(delta) > 5 else 0,
                    summary_stale=delta[6] if len(delta) > 6 else 0,
                    perf=dict(report.perf),
                    outcome=outcome,
                )
            )
            reports.append(report)
        return BatchResult(reports=reports, telemetry=telemetry)

    # -- serial path -------------------------------------------------------

    def _scan_in_process(self, plugins: Sequence[Plugin]) -> List[_TaskResult]:
        """``jobs=1``: the identical worker pipeline, no pool."""
        _init_worker(self.spec, self.options)
        return [_scan_one(self._payload(plugin)) for plugin in plugins]

    # -- parallel path -----------------------------------------------------

    def _scan_parallel(
        self, plugins: Sequence[Plugin], telemetry: ScanTelemetry
    ) -> List[_TaskResult]:
        results: Dict[int, _TaskResult] = {}
        unresolved = set(range(len(plugins)))
        pool_broken = False
        with ProcessPoolExecutor(
            max_workers=self.options.jobs,
            initializer=_init_worker,
            initargs=(self.spec, self.options),
        ) as executor:
            futures = {
                executor.submit(_scan_one, self._payload(plugins[index])): index
                for index in sorted(unresolved)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except (BrokenProcessPool, CancelledError):
                    # a worker died; which task killed it is unknown yet
                    pool_broken = True
                    continue
                except Exception as error:  # pragma: no cover - defensive
                    results[index] = self._crash_result(
                        plugins[index], f"scheduler error: {error!r}"
                    )
                unresolved.discard(index)
        if pool_broken:
            telemetry.worker_restarts += 1
            self._isolate(plugins, sorted(unresolved), results, telemetry)
        return [results[index] for index in range(len(plugins))]

    def _isolate(
        self,
        plugins: Sequence[Plugin],
        indexes: Sequence[int],
        results: Dict[int, _TaskResult],
        telemetry: ScanTelemetry,
    ) -> None:
        """Re-run each unresolved plugin in its own single-worker pool so
        the crasher is identified and every innocent plugin completes."""
        for index in indexes:
            with ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(self.spec, self.options),
            ) as solo:
                try:
                    results[index] = solo.submit(
                        _scan_one, self._payload(plugins[index])
                    ).result()
                except (BrokenProcessPool, CancelledError):
                    telemetry.worker_restarts += 1
                    results[index] = self._crash_result(
                        plugins[index], "worker process died during analysis"
                    )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _payload(plugin: Plugin) -> Tuple[str, str, Dict[str, str]]:
        return plugin.name, plugin.version, dict(plugin.files)

    def _tool_name(self) -> str:
        names = {"phpsafe": "phpSAFE", "rips": "RIPS", "pixy": "Pixy"}
        return names.get(self.spec.name, self.spec.name)

    def _crash_result(self, plugin: Plugin, reason: str) -> _TaskResult:
        report = _failure_report(self._tool_name(), plugin.slug, reason)
        return report, 0.0, "crashed", (0,) * 7


def scan_corpus(
    plugins: Sequence[Plugin],
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    spec: Optional[ToolSpec] = None,
) -> BatchResult:
    """One-call batch scan of a plugin corpus."""
    scanner = BatchScanner(
        spec=spec,
        options=BatchOptions(jobs=jobs, timeout=timeout, cache_dir=cache_dir),
    )
    return scanner.scan(plugins)

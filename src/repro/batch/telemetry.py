"""Batch-scan telemetry: the JSON report a scan leaves behind.

Each batch run aggregates one :class:`PluginScanStats` per plugin
(wall time, size, findings, cache counters, outcome) plus run-level
incidents (worker restarts, deadline timeouts, crashes) into a
:class:`ScanTelemetry` that serializes to a stable JSON schema
(``schema`` key: ``repro.batch.telemetry/v5``) for CI dashboards and
the performance benchmarks.

Schema history: v2 adds per-plugin typed-incident counts
(``incidents``/``recovered``), skipped-coverage counters
(``files_skipped``/``loc_skipped``), and the ``corrupt`` cache counter
(quarantined disk-cache objects).  v3 adds the function-summary cache
counters (``summary_hits``/``summary_misses``/``summary_stale``) and
the per-plugin/aggregated ``perf`` counter deltas (tokens/s, engine
steps, taint-interning rates) from :mod:`repro.perf`.  v4 adds the
analysis-service fields: a run-level ``service`` section
(:class:`ServiceStats`: queue depth/peak, accepted/rejected/deduped
jobs, queue-wait latency and throughput) and the per-plugin
``queued_seconds`` latency (time a submission waited before a worker
picked it up; always 0 outside the daemon).  v5 adds the incremental
rescan counters: per-plugin ``rescan`` (analysis roots total/reused,
fallback reason) and the run-level ``rescan`` aggregate
(roots reused across the run, incremental runs, full-scan fallbacks).
v6 adds the fleet layer: ``ServiceStats.quarantined`` (jobs failed for
good after exhausting their attempts), :class:`FleetStats` (the
coordinator's dispatch/steal/degradation counters) and
:func:`aggregate_fleet`, which folds the per-node ``GET /metrics``
documents of a sharded fleet into one fleet-wide view.  v7 adds the
``process_cache`` section: occupancy of the process-wide L1 artifact
cache (entries/bytes against both caps, byte-pressure evictions), so
long-lived fleet nodes surface artifact-memory growth instead of
leaking models across jobs invisibly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..perf import merge as merge_perf

SCHEMA = "repro.batch.telemetry/v7"


@dataclass
class ServiceStats:
    """Run-level metrics of the ``phpsafe serve`` daemon (schema v4).

    One instance is shared by the HTTP front end (which counts
    submissions and rejections) and the worker pool (which counts
    completions and queue-wait latency); ``GET /metrics`` serializes it
    inside the live :class:`ScanTelemetry`.
    """

    #: jobs currently waiting in the queue (sampled at serialization)
    queue_depth: int = 0
    #: deepest the queue ever got during this daemon's lifetime
    queue_depth_peak: int = 0
    #: submissions admitted to the queue (excludes cached/rejected)
    accepted: int = 0
    #: submissions bounced with HTTP 429 because the queue was full
    rejected: int = 0
    #: submissions answered instantly from the content-addressed
    #: result store (identical plugin digest already analyzed)
    deduped: int = 0
    #: accepted jobs a worker finished successfully
    completed: int = 0
    #: accepted jobs that ended in the ``failed`` state
    failed: int = 0
    #: jobs failed for good after exhausting their claim attempts
    #: (crash-looping or repeatedly-stolen inputs; subset of ``failed``)
    quarantined: int = 0
    #: summed queued→running wait over all started jobs (latency)
    queue_wait_seconds: float = 0.0
    #: jobs the wait sum covers (denominator of the mean)
    waits_recorded: int = 0
    #: seconds since the daemon started serving
    uptime_seconds: float = 0.0

    @property
    def mean_queue_wait(self) -> float:
        return (
            self.queue_wait_seconds / self.waits_recorded
            if self.waits_recorded
            else 0.0
        )

    @property
    def jobs_per_minute(self) -> float:
        """Sustained throughput: completed jobs per minute of uptime."""
        if not self.uptime_seconds:
            return 0.0
        return self.completed / (self.uptime_seconds / 60.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "deduped": self.deduped,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "queue_wait_seconds": round(self.queue_wait_seconds, 6),
            "mean_queue_wait": round(self.mean_queue_wait, 6),
            "uptime_seconds": round(self.uptime_seconds, 6),
            "jobs_per_minute": round(self.jobs_per_minute, 3),
        }


@dataclass
class FleetStats:
    """The coordinator's own counters (schema v6).

    Everything here is about *dispatch*, not analysis: the per-node
    analysis numbers live in each node's :class:`ServiceStats` and are
    folded together by :func:`aggregate_fleet`.
    """

    #: fleet size as configured
    nodes_total: int = 0
    #: jobs handed to a node (each re-dispatch counts again)
    dispatched: int = 0
    #: node submissions retried after a transient failure or 429
    retries: int = 0
    #: dispatches that moved to the next node on the ring because the
    #: preferred node was down or refused
    failovers: int = 0
    #: in-flight jobs taken away from a dead/wedged/straggler node and
    #: requeued for another one
    steals: int = 0
    #: steals avoided because the dying node had already persisted the
    #: result — the (digest, fingerprint) dedup of the exactly-once path
    steal_dedups: int = 0
    #: submissions shed with 503 because the fleet was degraded
    shed_503: int = 0
    #: up→down health transitions observed by the prober
    nodes_lost: int = 0
    #: down→up transitions (node recovered or SIGCONT'd)
    nodes_recovered: int = 0
    #: dispatch cycles that found no live node and had to park the job
    no_live_node_waits: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "nodes_total": self.nodes_total,
            "dispatched": self.dispatched,
            "retries": self.retries,
            "failovers": self.failovers,
            "steals": self.steals,
            "steal_dedups": self.steal_dedups,
            "shed_503": self.shed_503,
            "nodes_lost": self.nodes_lost,
            "nodes_recovered": self.nodes_recovered,
            "no_live_node_waits": self.no_live_node_waits,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


#: ServiceStats counters that sum across nodes
_FLEET_SUMMED = (
    "queue_depth",
    "accepted",
    "rejected",
    "deduped",
    "completed",
    "failed",
    "quarantined",
    "queue_wait_seconds",
)


def aggregate_fleet(
    node_documents: Dict[str, Optional[Dict[str, object]]],
) -> Dict[str, object]:
    """Fold per-node ``GET /metrics`` documents into one fleet view.

    ``node_documents`` maps node name to the node's live telemetry
    document, or ``None`` when the node was unreachable (down nodes
    still count toward ``nodes.total``).  Counter-like service fields
    sum; throughput sums (jobs/min of the fleet is the sum of its
    nodes); queue-state counts sum; per-node one-line summaries are
    kept under ``per_node``.
    """
    service_totals: Dict[str, float] = {key: 0 for key in _FLEET_SUMMED}
    queue_totals: Dict[str, int] = {}
    jobs_per_minute = 0.0
    findings = files = loc = 0
    per_node: Dict[str, Dict[str, object]] = {}
    up = 0
    for name in sorted(node_documents):
        document = node_documents[name]
        if document is None:
            per_node[name] = {"up": False}
            continue
        up += 1
        service = document.get("service") or {}
        for key in _FLEET_SUMMED:
            service_totals[key] += service.get(key, 0) or 0
        jobs_per_minute += service.get("jobs_per_minute", 0.0) or 0.0
        for state, count in (document.get("queue") or {}).items():
            queue_totals[state] = queue_totals.get(state, 0) + count
        findings += document.get("findings", 0) or 0
        files += document.get("files", 0) or 0
        loc += document.get("loc", 0) or 0
        per_node[name] = {
            "up": True,
            "completed": service.get("completed", 0),
            "failed": service.get("failed", 0),
            "quarantined": service.get("quarantined", 0),
            "queue_depth": service.get("queue_depth", 0),
            "jobs_per_minute": service.get("jobs_per_minute", 0.0),
            "uptime_seconds": service.get("uptime_seconds", 0.0),
        }
    waits = service_totals.pop("queue_wait_seconds")
    completed = service_totals["completed"]
    return {
        "schema": SCHEMA,
        "nodes": {
            "total": len(node_documents),
            "up": up,
            "down": len(node_documents) - up,
        },
        "service": {
            **{key: round(value, 6) for key, value in service_totals.items()},
            "queue_wait_seconds": round(waits, 6),
            "mean_queue_wait": round(waits / completed, 6) if completed else 0.0,
            "jobs_per_minute": round(jobs_per_minute, 3),
        },
        "queue": queue_totals,
        "findings": findings,
        "files": files,
        "loc": loc,
        "per_node": per_node,
    }


@dataclass
class PluginScanStats:
    """Per-plugin telemetry row."""

    plugin: str
    seconds: float = 0.0
    files: int = 0
    loc: int = 0
    findings: int = 0
    failures: int = 0
    #: typed robustness incidents recorded for this plugin, and the
    #: subset the pipeline recovered from (Section V.E taxonomy)
    incidents: int = 0
    recovered: int = 0
    #: files/LOC the tool could not analyze (coverage denominator)
    files_skipped: int = 0
    loc_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    #: corrupt disk-cache objects quarantined while scanning this plugin
    cache_corrupt: int = 0
    #: function-summary cache counters (separate tier from the parse
    #: cache; see :class:`repro.core.cache.SummaryCacheStats`)
    summary_hits: int = 0
    summary_misses: int = 0
    summary_stale: int = 0
    #: per-run perf counter delta (:data:`repro.perf.counters`)
    perf: Dict[str, float] = field(default_factory=dict)
    #: time the job waited queued before a worker claimed it (service
    #: submissions only; 0 for batch scans, which have no queue)
    queued_seconds: float = 0.0
    #: "ok" | "timeout" | "crashed" | "error"
    outcome: str = "ok"
    #: incremental-rescan counters (schema v5): analysis roots in the
    #: plugin and how many were reused from the prior scan's manifest;
    #: both 0 for plain (non-rescan) scans
    rescan_roots_total: int = 0
    rescan_roots_reused: int = 0
    #: why an attempted incremental rescan fell back to a full scan
    #: (empty: no fallback, or no rescan was attempted)
    rescan_fallback: str = ""

    @property
    def files_per_second(self) -> float:
        return self.files / self.seconds if self.seconds else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "plugin": self.plugin,
            "seconds": round(self.seconds, 6),
            "files": self.files,
            "loc": self.loc,
            "findings": self.findings,
            "failures": self.failures,
            "incidents": self.incidents,
            "recovered": self.recovered,
            "files_skipped": self.files_skipped,
            "loc_skipped": self.loc_skipped,
            "files_per_second": round(self.files_per_second, 3),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "disk_hits": self.disk_hits,
                "corrupt": self.cache_corrupt,
                "summary_hits": self.summary_hits,
                "summary_misses": self.summary_misses,
                "summary_stale": self.summary_stale,
            },
            "perf": dict(self.perf),
            "queued_seconds": round(self.queued_seconds, 6),
            "outcome": self.outcome,
            "rescan": {
                "roots_total": self.rescan_roots_total,
                "roots_reused": self.rescan_roots_reused,
                "fallback": self.rescan_fallback,
            },
        }


@dataclass
class ScanTelemetry:
    """Everything one batch scan measured."""

    jobs: int = 1
    wall_seconds: float = 0.0
    worker_restarts: int = 0
    timeouts: int = 0
    crashes: int = 0
    plugins: List[PluginScanStats] = field(default_factory=list)
    #: daemon metrics; ``None`` for plain batch scans (schema v4)
    service: Optional[ServiceStats] = None
    #: process-cache occupancy override (schema v7); ``None`` samples
    #: the serializing process's live L1 cache at ``to_dict`` time
    process_cache: Optional[Dict[str, object]] = None

    def record(self, stats: PluginScanStats) -> None:
        self.plugins.append(stats)

    # -- aggregates --------------------------------------------------------

    @property
    def total_files(self) -> int:
        return sum(stats.files for stats in self.plugins)

    @property
    def total_loc(self) -> int:
        return sum(stats.loc for stats in self.plugins)

    @property
    def total_findings(self) -> int:
        return sum(stats.findings for stats in self.plugins)

    @property
    def analysis_seconds(self) -> float:
        """Summed per-plugin time (> wall time when workers overlap)."""
        return sum(stats.seconds for stats in self.plugins)

    @property
    def files_per_second(self) -> float:
        return self.total_files / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cache_hits(self) -> int:
        return sum(stats.cache_hits for stats in self.plugins)

    @property
    def cache_misses(self) -> int:
        return sum(stats.cache_misses for stats in self.plugins)

    @property
    def disk_hits(self) -> int:
        return sum(stats.disk_hits for stats in self.plugins)

    @property
    def cache_corrupt(self) -> int:
        return sum(stats.cache_corrupt for stats in self.plugins)

    @property
    def summary_hits(self) -> int:
        return sum(stats.summary_hits for stats in self.plugins)

    @property
    def summary_misses(self) -> int:
        return sum(stats.summary_misses for stats in self.plugins)

    @property
    def summary_stale(self) -> int:
        return sum(stats.summary_stale for stats in self.plugins)

    @property
    def summary_hit_rate(self) -> float:
        total = self.summary_hits + self.summary_misses
        return self.summary_hits / total if total else 0.0

    def perf_totals(self) -> Dict[str, float]:
        """Perf counter deltas summed over every plugin of the run."""
        totals: Dict[str, float] = {}
        for stats in self.plugins:
            merge_perf(totals, stats.perf)
        return totals

    @property
    def total_incidents(self) -> int:
        return sum(stats.incidents for stats in self.plugins)

    @property
    def total_recovered(self) -> int:
        return sum(stats.recovered for stats in self.plugins)

    @property
    def total_files_skipped(self) -> int:
        return sum(stats.files_skipped for stats in self.plugins)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def rescan_roots_total(self) -> int:
        return sum(stats.rescan_roots_total for stats in self.plugins)

    @property
    def rescan_roots_reused(self) -> int:
        return sum(stats.rescan_roots_reused for stats in self.plugins)

    @property
    def rescan_incremental_runs(self) -> int:
        """Plugins whose scan actually skipped at least one root."""
        return sum(
            1
            for stats in self.plugins
            if stats.rescan_roots_reused and not stats.rescan_fallback
        )

    @property
    def rescan_fallbacks(self) -> int:
        """Attempted incremental rescans that fell back to a full scan."""
        return sum(1 for stats in self.plugins if stats.rescan_fallback)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "schema": SCHEMA,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "analysis_seconds": round(self.analysis_seconds, 6),
            "files": self.total_files,
            "loc": self.total_loc,
            "findings": self.total_findings,
            "files_per_second": round(self.files_per_second, 3),
            "files_skipped": self.total_files_skipped,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "disk_hits": self.disk_hits,
                "hit_rate": round(self.cache_hit_rate, 4),
                "corrupt": self.cache_corrupt,
                "summary_hits": self.summary_hits,
                "summary_misses": self.summary_misses,
                "summary_stale": self.summary_stale,
                "summary_hit_rate": round(self.summary_hit_rate, 4),
            },
            "perf": self.perf_totals(),
            "rescan": {
                "roots_total": self.rescan_roots_total,
                "roots_reused": self.rescan_roots_reused,
                "incremental_runs": self.rescan_incremental_runs,
                "fallbacks": self.rescan_fallbacks,
            },
            "incidents": {
                "worker_restarts": self.worker_restarts,
                "timeouts": self.timeouts,
                "crashes": self.crashes,
                "total": self.total_incidents,
                "recovered": self.total_recovered,
            },
            "plugins": [stats.to_dict() for stats in self.plugins],
        }
        if self.process_cache is not None:
            document["process_cache"] = dict(self.process_cache)
        else:
            # sample the serializing process's live L1 occupancy; batch
            # workers keep their own caches, so this reports the
            # coordinator/daemon process — exactly the one whose
            # lifetime makes unbounded growth dangerous
            from ..core.phpsafe import process_cache_occupancy

            document["process_cache"] = process_cache_occupancy()
        if self.service is not None:
            document["service"] = self.service.to_dict()
        return document

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

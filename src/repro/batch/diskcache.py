"""Disk-persistent model cache: the batch scanner's shared parse store.

The in-memory :class:`~repro.core.cache.ModelCache` dies with the
process, so CI runs, the history workflow and ``timing_repetitions``
all re-parse every unchanged file.  :class:`DiskModelCache` layers a
content-addressed pickle store under the memory LRU: every parsed file
model (and every cached parse *failure*) is also written to
``cache_dir/objects/<aa>/<sha256>.pkl``, and a memory miss probes disk
before re-parsing.  Because objects are keyed by a content digest, the
store needs no invalidation — a changed file simply hashes to a new
object — and writes are atomic (temp file + ``os.replace``), so any
number of worker processes can share one cache directory.

The memory tier keeps its ``max_entries`` (and, when configured,
``max_bytes``) LRU bounds; the disk tier is unbounded and survives
across runs (``clear()`` drops both).  An entry too large for the
memory budget still lands on disk, so it is served persistently without
ever being pinned in RAM.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional

from ..core.cache import ModelCache, _Slot


class DiskModelCache(ModelCache):
    """A :class:`ModelCache` backed by a persistent cache directory."""

    def __init__(
        self,
        cache_dir: str,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)
        self.cache_dir = cache_dir
        self._objects_dir = os.path.join(cache_dir, "objects")
        os.makedirs(self._objects_dir, exist_ok=True)

    # -- tiering -----------------------------------------------------------

    def _load(self, key: str) -> Optional[_Slot]:
        slot = super()._load(key)
        if slot is not None:
            return slot
        slot = self._read_object(key)
        if slot is not None:
            self.stats.disk_hits += 1
            # promote into the memory LRU without re-writing the object
            super()._insert(key, slot)
        return slot

    def _insert(self, key: str, slot: _Slot) -> None:
        super()._insert(key, slot)
        self._write_object(key, slot)

    def clear(self) -> None:
        """Drop the memory tier *and* the persistent objects."""
        super().clear()
        for dirpath, _dirnames, filenames in os.walk(self._objects_dir):
            for filename in filenames:
                try:
                    os.remove(os.path.join(dirpath, filename))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def disk_len(self) -> int:
        """Number of objects currently persisted."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._objects_dir):
            count += sum(1 for name in filenames if name.endswith(".pkl"))
        return count

    # -- object store ------------------------------------------------------

    def _object_path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self._objects_dir, digest[:2], digest + ".pkl")

    def _read_object(self, key: str) -> Optional[_Slot]:
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                model, error = pickle.load(handle)
            return model, error
        except FileNotFoundError:
            return None
        except Exception:
            # truncated/corrupted/stale-format object: quarantine it
            # (unlink so the next store rewrites a clean one) and count
            # the incident so batch telemetry surfaces silent cache rot
            self.stats.corrupt += 1
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass
            return None

    def _write_object(self, key: str, slot: _Slot) -> None:
        path = self._object_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(tuple(slot), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)  # atomic under concurrent writers
        except Exception:
            # unpicklable model or full disk: keep the memory entry,
            # skip persistence
            try:
                os.remove(tmp_path)
            except OSError:
                pass

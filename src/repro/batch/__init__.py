"""Batch scanning subsystem (paper Section VI performance work).

Fans per-plugin analysis out over worker processes with crash/timeout
isolation (:mod:`.scheduler`), backed by a disk-persistent parse cache
(:mod:`.diskcache`), and reports wall time, throughput, cache hit rate
and robustness incidents as JSON telemetry (:mod:`.telemetry`).
"""

from .diskcache import DiskModelCache
from .scheduler import (
    BatchOptions,
    BatchResult,
    BatchScanner,
    ToolSpec,
    scan_corpus,
)
from .telemetry import SCHEMA, PluginScanStats, ScanTelemetry, ServiceStats

__all__ = [
    "BatchOptions",
    "BatchResult",
    "BatchScanner",
    "DiskModelCache",
    "PluginScanStats",
    "SCHEMA",
    "ScanTelemetry",
    "ServiceStats",
    "ToolSpec",
    "scan_corpus",
]

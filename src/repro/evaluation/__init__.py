"""Evaluation harness: the paper's Section IV methodology as code.

Run tools over a corpus (:mod:`.runner`), match findings to ground
truth (:mod:`.matching`), compute Table I metrics (:mod:`.metrics`),
overlap (:mod:`.overlap` — Fig. 2), input vectors (:mod:`.vectors` —
Table II), fix inertia (:mod:`.inertia` — Section V.D), and render
everything (:mod:`.report`).
"""

from .inertia import InertiaAnalysis, analyze_inertia
from .matching import ClassifiedFinding, MatchResult, match_report
from .metrics import Confusion, percent
from .overlap import OverlapAnalysis, compute_overlap, growth_percent
from .report import (
    PAPER_DISTINCT,
    PAPER_FAILED_FILES,
    PAPER_OOP,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    render_fig2,
    render_inertia,
    render_robustness,
    render_table1,
    render_table2,
    render_table3,
)
from .runner import ToolEvaluation, VersionEvaluation, evaluate_both, evaluate_version
from .statistics import (
    Interval,
    PairedComparison,
    bootstrap_rate,
    compare_tools,
    pairwise_comparisons,
    tool_intervals,
)
from .vectors import (
    VectorBreakdown,
    both_versions_breakdown,
    tier_shares,
    vector_breakdown,
)

__all__ = [
    "ClassifiedFinding",
    "Confusion",
    "InertiaAnalysis",
    "Interval",
    "PairedComparison",
    "MatchResult",
    "OverlapAnalysis",
    "PAPER_DISTINCT",
    "PAPER_FAILED_FILES",
    "PAPER_OOP",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "ToolEvaluation",
    "VectorBreakdown",
    "VersionEvaluation",
    "analyze_inertia",
    "bootstrap_rate",
    "compare_tools",
    "both_versions_breakdown",
    "compute_overlap",
    "evaluate_both",
    "evaluate_version",
    "growth_percent",
    "match_report",
    "pairwise_comparisons",
    "percent",
    "tool_intervals",
    "render_fig2",
    "render_inertia",
    "render_robustness",
    "render_table1",
    "render_table2",
    "render_table3",
    "tier_shares",
    "vector_breakdown",
]

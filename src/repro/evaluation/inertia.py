"""Fix-inertia analysis (paper Section V.D).

The 2012 findings were disclosed to developers in November 2013; the
paper then checks how many of the 2014-version vulnerabilities were
"among the ones discovered and disclosed ... more than one year ago"
(42%), and how many of those are trivially exploitable via
GET/POST/COOKIE (24% of the carried ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from .runner import VersionEvaluation


@dataclass(frozen=True)
class InertiaAnalysis:
    """Carry-over statistics between two corpus versions."""

    newer_total: int
    carried: int
    carried_easy: int  # directly exploitable (GET/POST/COOKIE)

    @property
    def carried_share(self) -> float:
        """Fraction of newer-version vulnerabilities already disclosed."""
        return self.carried / self.newer_total if self.newer_total else 0.0

    @property
    def easy_share_of_carried(self) -> float:
        return self.carried_easy / self.carried if self.carried else 0.0


def analyze_inertia(
    older: VersionEvaluation, newer: VersionEvaluation
) -> InertiaAnalysis:
    """Compute Section V.D statistics from detected vulnerability sets."""
    older_ids = older.union_detected()
    newer_ids = newer.union_detected()
    carried_ids: Set[str] = (
        older.corpus.truth.carried_ids()
        & newer.corpus.truth.carried_ids()
        & older_ids
        & newer_ids
    )
    easy = 0
    for entry in newer.corpus.truth.vulnerabilities():
        if entry.spec.spec_id in carried_ids and entry.spec.vector.directly_exploitable:
            easy += 1
    return InertiaAnalysis(
        newer_total=len(newer_ids),
        carried=len(carried_ids),
        carried_easy=easy,
    )

"""Binary-classification metrics (paper Section IV.A).

Precision = TP/(TP+FP), Recall = TP/(TP+FN), F-score = harmonic mean.
The paper's FN convention is *optimistic*: since no exhaustive manual
audit was feasible, "we considered as the FN of one tool the
vulnerabilities that it did not detect but were detected by the other
tools".  Our ground truth is exact, so both conventions are offered:
``paper`` (union-of-tools reference) and ``exact`` (generator manifest
reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Confusion:
    """TP/FP/FN counts with derived rates."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> Optional[float]:
        """TP/(TP+FP); None when the tool reported nothing (the paper
        prints '-' for these cells)."""
        total = self.tp + self.fp
        return self.tp / total if total else None

    @property
    def recall(self) -> Optional[float]:
        total = self.tp + self.fn
        return self.tp / total if total else None

    @property
    def f_score(self) -> Optional[float]:
        precision = self.precision
        recall = self.recall
        if precision is None or recall is None or (precision + recall) == 0:
            return None
        return 2 * precision * recall / (precision + recall)

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(self.tp + other.tp, self.fp + other.fp, self.fn + other.fn)


def percent(value: Optional[float]) -> str:
    """Format a rate the way the paper's tables do (``83%`` or ``-``)."""
    if value is None:
        return "-"
    return f"{round(value * 100)}%"

"""Detection-overlap analysis: the Venn diagram of Fig. 2.

"Combining the results of all tools we detected 394 distinct
vulnerabilities in 2012 versions and 586 in 2014 versions.  This is an
increase of 51% in just two years." — this module computes the region
populations of that diagram from the per-tool detected-spec sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Set

from .runner import VersionEvaluation


@dataclass(frozen=True)
class VennRegion:
    """One exclusive region: detected by exactly ``tools``."""

    tools: FrozenSet[str]
    count: int

    @property
    def label(self) -> str:
        return " ∩ ".join(sorted(self.tools)) + " only"


@dataclass
class OverlapAnalysis:
    """All exclusive regions plus per-tool and union totals."""

    version: str
    per_tool: Dict[str, int]
    regions: List[VennRegion]
    union_total: int

    def region(self, *tools: str) -> int:
        """Count for the exclusive region of exactly ``tools``."""
        wanted = frozenset(tools)
        for region in self.regions:
            if region.tools == wanted:
                return region.count
        return 0

    def shared_by_all(self) -> int:
        full = frozenset(self.per_tool)
        return self.region(*full)


def compute_overlap(evaluation: VersionEvaluation) -> OverlapAnalysis:
    """Partition the union of detections into exclusive Venn regions."""
    detected: Dict[str, Set[str]] = {
        name: set(tool_eval.match.detected_ids)
        for name, tool_eval in evaluation.tools.items()
    }
    names = sorted(detected)
    union: Set[str] = set()
    for ids in detected.values():
        union |= ids

    regions: List[VennRegion] = []
    for size in range(1, len(names) + 1):
        for combo in combinations(names, size):
            inside = set(union)
            for name in combo:
                inside &= detected[name]
            for name in names:
                if name not in combo:
                    inside -= detected[name]
            if inside:
                regions.append(VennRegion(tools=frozenset(combo), count=len(inside)))
    return OverlapAnalysis(
        version=evaluation.version,
        per_tool={name: len(ids) for name, ids in detected.items()},
        regions=regions,
        union_total=len(union),
    )


def growth_percent(older: OverlapAnalysis, newer: OverlapAnalysis) -> float:
    """The paper's "+51% in just two years" headline number."""
    if older.union_total == 0:
        return 0.0
    return (newer.union_total - older.union_total) / older.union_total * 100.0

"""Statistical treatment of the tool comparison.

The paper reports point estimates only; a modern evaluation of the same
design would add uncertainty and significance.  This module supplies
both, computed from the per-flow detection outcomes the harness already
produces:

- bootstrap confidence intervals for precision/recall/F-score (resample
  the classified findings / reference flows with replacement);
- McNemar's test on the paired per-vulnerability detection outcomes of
  two tools (each confirmed flow is a paired binary trial: tool A found
  it / tool B found it), the standard test for comparing two classifiers
  on the same dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

import numpy

try:  # pragma: no cover - environment probe
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


@dataclass(frozen=True)
class Interval:
    """A bootstrap percentile confidence interval."""

    point: float
    low: float
    high: float
    confidence: float = 0.95

    def __str__(self) -> str:
        return (
            f"{self.point * 100:.1f}% "
            f"[{self.low * 100:.1f}, {self.high * 100:.1f}]"
        )

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_rate(
    successes: int,
    total: int,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 20150622,  # DSN 2015 conference date: determinism
) -> Interval:
    """CI for a binomial rate (precision = TP over reported, etc.)."""
    if total == 0:
        return Interval(point=0.0, low=0.0, high=0.0, confidence=confidence)
    rng = numpy.random.default_rng(seed)
    outcomes = numpy.zeros(total)
    outcomes[:successes] = 1.0
    draws = rng.choice(outcomes, size=(resamples, total), replace=True)
    rates = draws.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = numpy.quantile(rates, [alpha, 1.0 - alpha])
    return Interval(
        point=successes / total,
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """McNemar-style comparison of two tools on the same flows."""

    tool_a: str
    tool_b: str
    both: int  # found by both
    only_a: int
    only_b: int
    neither: int
    p_value: Optional[float]

    @property
    def discordant(self) -> int:
        return self.only_a + self.only_b

    @property
    def significant(self) -> bool:
        return self.p_value is not None and self.p_value < 0.05

    def __str__(self) -> str:
        p_text = f"p={self.p_value:.2g}" if self.p_value is not None else "p=n/a"
        return (
            f"{self.tool_a} vs {self.tool_b}: both={self.both} "
            f"only-{self.tool_a}={self.only_a} only-{self.tool_b}={self.only_b} "
            f"neither={self.neither} ({p_text})"
        )


def _mcnemar_p(only_a: int, only_b: int) -> Optional[float]:
    """Exact binomial McNemar p-value on the discordant pairs."""
    discordant = only_a + only_b
    if discordant == 0:
        return 1.0
    if _scipy_stats is not None:
        result = _scipy_stats.binomtest(
            min(only_a, only_b), discordant, 0.5, alternative="two-sided"
        )
        return float(result.pvalue)
    return None  # pragma: no cover - scipy is an install-time dependency


def compare_tools(
    tool_a: str,
    detected_a: Set[str],
    tool_b: str,
    detected_b: Set[str],
    reference: Set[str],
) -> PairedComparison:
    """Paired detection comparison over the ``reference`` flow set."""
    both = len(reference & detected_a & detected_b)
    only_a = len(reference & detected_a - detected_b)
    only_b = len(reference & detected_b - detected_a)
    neither = len(reference - detected_a - detected_b)
    return PairedComparison(
        tool_a=tool_a,
        tool_b=tool_b,
        both=both,
        only_a=only_a,
        only_b=only_b,
        neither=neither,
        p_value=_mcnemar_p(only_a, only_b),
    )


def tool_intervals(evaluation, tool: str, convention: str = "paper") -> dict:
    """Bootstrap intervals for one tool's Table I metrics."""
    confusion = evaluation.confusion(tool, convention=convention)
    return {
        "precision": bootstrap_rate(confusion.tp, confusion.tp + confusion.fp),
        "recall": bootstrap_rate(confusion.tp, confusion.tp + confusion.fn),
    }


def pairwise_comparisons(evaluation, tools: Sequence[str]) -> Tuple[PairedComparison, ...]:
    """All pairwise McNemar comparisons over the confirmed-flow union."""
    reference = evaluation.union_detected()
    detected = {
        tool: set(evaluation.tools[tool].match.detected_ids) for tool in tools
    }
    out = []
    for index, tool_a in enumerate(tools):
        for tool_b in tools[index + 1:]:
            out.append(
                compare_tools(
                    tool_a, detected[tool_a], tool_b, detected[tool_b], reference
                )
            )
    return tuple(out)

"""Malicious input-vector taxonomy: Table II (paper Section V.C).

The paper traces every confirmed vulnerability back to its entry point
and groups by vector: POST, GET, POST/GET/COOKIE, DB, and
File/Function/Array — plus the "Both versions" column for flows present
in 2012 and 2014 alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..config.vulnerability import TABLE2_ROWS
from .runner import VersionEvaluation


@dataclass
class VectorBreakdown:
    """Counts per Table II row for one corpus version."""

    version: str
    rows: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.rows.values())

    def row(self, label: str) -> int:
        return self.rows.get(label, 0)


def vector_breakdown(
    evaluation: VersionEvaluation, detected_only: bool = True
) -> VectorBreakdown:
    """Classify the version's confirmed vulnerabilities by input vector.

    ``detected_only=True`` reproduces the paper (only flows some tool
    found and the expert confirmed are classified); ``False`` uses the
    full ground truth, which includes flows every tool missed.
    """
    truth = evaluation.corpus.truth
    if detected_only:
        wanted: Optional[Set[str]] = evaluation.union_detected()
    else:
        wanted = None
    breakdown = VectorBreakdown(version=evaluation.version)
    for label in TABLE2_ROWS:
        breakdown.rows[label] = 0
    for entry in truth.vulnerabilities():
        if wanted is not None and entry.spec.spec_id not in wanted:
            continue
        breakdown.rows[entry.spec.vector.table2_row] += 1
    return breakdown


def both_versions_breakdown(
    older: VersionEvaluation, newer: VersionEvaluation
) -> VectorBreakdown:
    """Table II's "Both versions" column: carried flows detected in both."""
    older_ids = older.union_detected()
    newer_ids = newer.union_detected()
    carried = (
        older.corpus.truth.carried_ids()
        & newer.corpus.truth.carried_ids()
        & older_ids
        & newer_ids
    )
    breakdown = VectorBreakdown(version="both")
    for label in TABLE2_ROWS:
        breakdown.rows[label] = 0
    for entry in newer.corpus.truth.vulnerabilities():
        if entry.spec.spec_id in carried:
            breakdown.rows[entry.spec.vector.table2_row] += 1
    return breakdown


def tier_shares(breakdown: VectorBreakdown) -> Dict[int, float]:
    """Exploitability-tier shares (paper: 36% direct, 62% DB, 1.8% other).

    Tier 1 = POST+GET+POST/GET/COOKIE rows, tier 2 = DB, tier 3 = rest.
    """
    total = breakdown.total or 1
    tier1 = sum(breakdown.row(label) for label in ("POST", "GET", "POST/GET/COOKIE"))
    tier2 = breakdown.row("DB")
    tier3 = breakdown.row("File/Function/Array")
    return {1: tier1 / total, 2: tier2 / total, 3: tier3 / total}

"""Evaluation orchestration (paper Section IV.B, steps 4 and 5).

Runs every tool over every plugin of a corpus version, collecting
classified findings, wall-clock time (Table III averages five runs; the
repetition count is configurable) and robustness incidents (Section
V.E), then derives the Table I confusion metrics under both FN
conventions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..batch import BatchOptions, BatchScanner, ToolSpec
from ..config.vulnerability import VulnKind
from ..core.results import FileFailure, ToolReport
from ..core.tool import AnalyzerTool
from ..corpus.generator import GeneratedCorpus
from ..plugin import Plugin
from .matching import MatchResult, accumulate_report
from .metrics import Confusion


@dataclass
class ToolEvaluation:
    """Everything one tool produced over one corpus version."""

    tool: str
    version: str
    match: MatchResult
    seconds: float = 0.0
    timing_runs: List[float] = field(default_factory=list)
    failures: List[FileFailure] = field(default_factory=list)
    files_analyzed: int = 0
    loc_analyzed: int = 0

    @property
    def failed_files(self) -> List[str]:
        return [failure.file for failure in self.failures if not failure.completed]

    @property
    def error_messages(self) -> int:
        return sum(1 for failure in self.failures if failure.is_error)

    @property
    def seconds_mean(self) -> float:
        if self.timing_runs:
            return sum(self.timing_runs) / len(self.timing_runs)
        return self.seconds

    @property
    def seconds_per_kloc(self) -> float:
        kloc = self.loc_analyzed / 1000.0
        return self.seconds_mean / kloc if kloc else 0.0


@dataclass
class VersionEvaluation:
    """All tools over one corpus version."""

    corpus: GeneratedCorpus
    tools: Dict[str, ToolEvaluation] = field(default_factory=dict)

    @property
    def version(self) -> str:
        return self.corpus.version

    def tool_names(self) -> List[str]:
        return list(self.tools)

    def union_detected(self, kind: Optional[VulnKind] = None) -> Set[str]:
        """Distinct vulnerable spec ids detected by at least one tool
        (the paper's "real set of vulnerabilities the plugin have")."""
        union: Set[str] = set()
        for evaluation in self.tools.values():
            if kind is None:
                union |= evaluation.match.detected_ids
            else:
                union |= evaluation.match.detected_ids_of(kind, self.corpus.truth)
        return union

    def confusion(
        self, tool: str, kind: Optional[VulnKind] = None, convention: str = "paper"
    ) -> Confusion:
        """Table I cell block for one tool.

        ``convention="paper"`` computes FN against the union of all
        tools' confirmed detections (the paper's optimistic Recall);
        ``"exact"`` computes FN against the generator's ground truth.
        """
        evaluation = self.tools[tool]
        tp, fp = evaluation.match.counts(kind)
        if kind is None:
            detected = evaluation.match.detected_ids
        else:
            detected = evaluation.match.detected_ids_of(kind, self.corpus.truth)
        if convention == "paper":
            reference = self.union_detected(kind)
        elif convention == "exact":
            reference = {
                entry.spec.spec_id
                for entry in self.corpus.truth.vulnerabilities()
                if kind is None or entry.spec.kind is kind
            }
        else:
            raise ValueError(f"unknown convention {convention!r}")
        fn = len(reference - detected)
        return Confusion(tp=tp, fp=fp, fn=fn)


def run_tool(
    tool: AnalyzerTool,
    plugins: Sequence[Plugin],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Tuple[List[ToolReport], float]:
    """Analyze every plugin, returning per-plugin reports and the
    wall-clock time of the analysis alone (no classification).

    Public so the differential harness (:mod:`repro.difftest`) drives
    the exact execution paths the evaluation uses: ``jobs > 1`` or a
    ``cache_dir`` routes through the batch scheduler, otherwise the
    plugins are analyzed serially in-process."""
    if jobs > 1 or cache_dir:
        spec = ToolSpec.from_tool(tool)
        if spec is not None:
            scanner = BatchScanner(
                spec, BatchOptions(jobs=jobs, cache_dir=cache_dir)
            )
            result = scanner.scan(plugins)
            return result.reports, result.telemetry.wall_seconds
        # unpicklable custom tool: fall through to the serial path
    start = time.perf_counter()
    reports = [tool.analyze(plugin) for plugin in plugins]
    return reports, time.perf_counter() - start


def evaluate_version(
    corpus: GeneratedCorpus,
    tools: Sequence[AnalyzerTool],
    timing_repetitions: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    report_hook: Optional[Callable[[str, List[ToolReport]], None]] = None,
) -> VersionEvaluation:
    """Run ``tools`` over every plugin of ``corpus``.

    ``timing_repetitions`` > 1 re-runs the analysis to average the
    Table III detection time the way the paper does (five runs); every
    repetition times only the analysis itself — ground-truth
    classification happens outside the timed region so run 1 measures
    the same work as runs 2..N.  ``jobs`` > 1 fans the per-plugin
    analysis out over the batch scheduler (``jobs=1``, the default, is
    the paper-faithful serial configuration); ``cache_dir`` persists
    the parse cache across runs and repetitions.
    """
    evaluation = VersionEvaluation(corpus=corpus)
    for tool in tools:
        match = MatchResult(tool=tool.name, version=corpus.version)
        tool_eval = ToolEvaluation(
            tool=tool.name, version=corpus.version, match=match
        )
        reports, seconds = run_tool(tool, corpus.plugins, jobs, cache_dir)
        if report_hook is not None:
            # differential harness hook: hand out the per-plugin reports
            # of this configuration before they are folded into metrics
            report_hook(tool.name, reports)
        tool_eval.seconds = seconds
        tool_eval.timing_runs.append(seconds)
        for plugin, report in zip(corpus.plugins, reports):
            accumulate_report(match, report, corpus.truth, plugin.name)
            tool_eval.failures.extend(report.failures)
            tool_eval.files_analyzed += report.files_analyzed
            tool_eval.loc_analyzed += report.loc_analyzed
        for _ in range(timing_repetitions - 1):
            _, seconds = run_tool(tool, corpus.plugins, jobs, cache_dir)
            tool_eval.timing_runs.append(seconds)
        evaluation.tools[tool.name] = tool_eval
    return evaluation


def evaluate_both(
    corpora: Iterable[GeneratedCorpus],
    tools_factory,
    timing_repetitions: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, VersionEvaluation]:
    """Evaluate several corpus versions with fresh tool instances.

    ``tools_factory`` is called per version and must return the tool
    list; fresh instances keep per-run state (none today) isolated.
    """
    results: Dict[str, VersionEvaluation] = {}
    for corpus in corpora:
        results[corpus.version] = evaluate_version(
            corpus,
            tools_factory(),
            timing_repetitions=timing_repetitions,
            jobs=jobs,
            cache_dir=cache_dir,
        )
    return results

"""Render the paper's tables/figure from evaluation results.

Each ``render_*`` function produces the same rows the paper reports, as
plain text, with the paper's published values available in the
``PAPER_*`` constants so benchmarks and EXPERIMENTS.md can print
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List

from ..config.vulnerability import TABLE2_ROWS, VulnKind
from .inertia import InertiaAnalysis
from .metrics import Confusion, percent
from .overlap import OverlapAnalysis
from .runner import VersionEvaluation
from .vectors import VectorBreakdown

TOOL_ORDER = ("phpSAFE", "RIPS", "Pixy")

#: Table I as published (DSN 2015).  The paper's own Global rows do not
#: always equal XSS+SQLi (e.g. phpSAFE 2014: 374+9 vs Global 387); the
#: reproduction is internally consistent and EXPERIMENTS.md records the
#: deltas.
PAPER_TABLE1: Dict[str, Dict[str, Dict[str, int]]] = {
    "phpSAFE": {
        "2012": {"xss_tp": 307, "xss_fp": 63, "sqli_tp": 8, "sqli_fp": 2,
                 "global_tp": 315, "global_fp": 65},
        "2014": {"xss_tp": 374, "xss_fp": 57, "sqli_tp": 9, "sqli_fp": 5,
                 "global_tp": 387, "global_fp": 62},
    },
    "RIPS": {
        "2012": {"xss_tp": 134, "xss_fp": 79, "sqli_tp": 0, "sqli_fp": 0,
                 "global_tp": 134, "global_fp": 79},
        "2014": {"xss_tp": 288, "xss_fp": 47, "sqli_tp": 0, "sqli_fp": 1,
                 "global_tp": 304, "global_fp": 79},
    },
    "Pixy": {
        "2012": {"xss_tp": 50, "xss_fp": 185, "sqli_tp": 0, "sqli_fp": 0,
                 "global_tp": 50, "global_fp": 187},
        "2014": {"xss_tp": 20, "xss_fp": 197, "sqli_tp": 0, "sqli_fp": 0,
                 "global_tp": 20, "global_fp": 208},
    },
}

#: Table II as published.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "2012": {"POST": 22, "GET": 96, "POST/GET/COOKIE": 24, "DB": 211,
             "File/Function/Array": 41},
    "2014": {"POST": 43, "GET": 111, "POST/GET/COOKIE": 57, "DB": 363,
             "File/Function/Array": 11},
    "both": {"POST": 11, "GET": 36, "POST/GET/COOKIE": 19, "DB": 162,
             "File/Function/Array": 4},
}

#: Table III as published (seconds, Intel Core i5 2.8 GHz, avg of 5).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "phpSAFE": {"2012": 17.87, "2014": 180.91},
    "RIPS": {"2012": 69.42, "2014": 178.46},
    "Pixy": {"2012": 49.57, "2014": 106.54},
}

#: Fig. 2 / Section V.B headline numbers.
PAPER_DISTINCT = {"2012": 394, "2014": 586}
#: Section V.A: OOP-mediated vulnerabilities (phpSAFE only).
PAPER_OOP = {"2012": (151, 10), "2014": (179, 7)}  # (count, plugins)
#: Section V.E robustness: files each tool could not analyze.
PAPER_FAILED_FILES = {
    "phpSAFE": {"2012": 1, "2014": 3},
    "RIPS": {"2012": 0, "2014": 0},
    "Pixy": {"2012": 1, "2014": 31},
}
PAPER_PIXY_ERRORS = {"2012": 1, "2014": 37}
#: Section V.E corpus size.
PAPER_CORPUS = {"2012": (266, 89_560), "2014": (356, 180_801)}


def _metric_rows(confusion: Confusion) -> List[str]:
    return [
        str(confusion.tp),
        str(confusion.fp),
        percent(confusion.precision),
        percent(confusion.recall),
        percent(confusion.f_score),
    ]


def render_table1(
    evaluations: Dict[str, VersionEvaluation], convention: str = "paper"
) -> str:
    """Table I: TP/FP/Precision/Recall/F-score per tool × version × kind."""
    lines = [
        "TABLE I. VULNERABILITIES OF 2012 AND 2014 PLUGIN VERSIONS"
        f"  (FN convention: {convention})",
    ]
    header = f"{'':22s}" + "".join(
        f"{tool + ' ' + version:>15s}"
        for tool in TOOL_ORDER
        for version in sorted(evaluations)
    )
    lines.append(header)
    sections = [
        ("XSS", VulnKind.XSS),
        ("SQLi", VulnKind.SQLI),
        ("Global", None),
    ]
    metric_names = ("True Positives", "False Positives", "Precision", "Recall", "F-score")
    for section_name, kind in sections:
        lines.append(section_name)
        cells: Dict[str, List[str]] = {}
        for tool in TOOL_ORDER:
            for version in sorted(evaluations):
                evaluation = evaluations[version]
                confusion = evaluation.confusion(tool, kind, convention)
                cells[f"{tool}/{version}"] = _metric_rows(confusion)
        for row_index, metric in enumerate(metric_names):
            row = f"  {metric:20s}"
            for tool in TOOL_ORDER:
                for version in sorted(evaluations):
                    row += f"{cells[f'{tool}/{version}'][row_index]:>15s}"
            lines.append(row)
    return "\n".join(lines)


def render_table2(
    older: VectorBreakdown, newer: VectorBreakdown, both: VectorBreakdown
) -> str:
    """Table II: malicious input-vector type."""
    lines = [
        "TABLE II. MALICIOUS INPUT VECTOR TYPE",
        f"{'Input Vectors':22s}{'V.2012':>10s}{'V.2014':>10s}{'Both':>10s}"
        f"{'paper12':>10s}{'paper14':>10s}{'paperB':>10s}",
    ]
    for label in TABLE2_ROWS:
        lines.append(
            f"{label:22s}{older.row(label):>10d}{newer.row(label):>10d}"
            f"{both.row(label):>10d}"
            f"{PAPER_TABLE2['2012'][label]:>10d}"
            f"{PAPER_TABLE2['2014'][label]:>10d}"
            f"{PAPER_TABLE2['both'][label]:>10d}"
        )
    lines.append(
        f"{'Total':22s}{older.total:>10d}{newer.total:>10d}{both.total:>10d}"
        f"{sum(PAPER_TABLE2['2012'].values()):>10d}"
        f"{sum(PAPER_TABLE2['2014'].values()):>10d}"
        f"{sum(PAPER_TABLE2['both'].values()):>10d}"
    )
    return "\n".join(lines)


def render_table3(evaluations: Dict[str, VersionEvaluation]) -> str:
    """Table III: detection time of all plugins, in seconds."""
    lines = [
        "TABLE III. DETECTION TIME OF ALL PLUGINS IN SECONDS",
        f"{'Tool':10s}" + "".join(
            f"{'V.' + version:>12s}{'s/KLOC':>10s}" for version in sorted(evaluations)
        ) + f"{'paper 2012':>12s}{'paper 2014':>12s}",
    ]
    for tool in TOOL_ORDER:
        row = f"{tool:10s}"
        for version in sorted(evaluations):
            evaluation = evaluations[version].tools.get(tool)
            if evaluation is None:
                row += f"{'-':>12s}{'-':>10s}"
            else:
                row += f"{evaluation.seconds_mean:>12.2f}{evaluation.seconds_per_kloc:>10.3f}"
        row += f"{PAPER_TABLE3[tool]['2012']:>12.2f}{PAPER_TABLE3[tool]['2014']:>12.2f}"
        lines.append(row)
    return "\n".join(lines)


def render_fig2(older: OverlapAnalysis, newer: OverlapAnalysis) -> str:
    """Fig. 2: tools vulnerability detection overlap."""
    lines = ["FIG. 2. TOOLS VULNERABILITY DETECTION OVERLAP"]
    for analysis in (older, newer):
        lines.append(
            f"  version {analysis.version}: union={analysis.union_total} "
            f"(paper: {PAPER_DISTINCT.get(analysis.version, '?')})"
        )
        for name, count in sorted(analysis.per_tool.items()):
            lines.append(f"    {name:10s} detected {count}")
        for region in sorted(
            analysis.regions, key=lambda region: (len(region.tools), sorted(region.tools))
        ):
            lines.append(f"    {region.label:30s} {region.count}")
    growth = (
        (newer.union_total - older.union_total) / older.union_total * 100.0
        if older.union_total
        else 0.0
    )
    lines.append(f"  growth 2012→2014: {growth:+.0f}% (paper: +51%)")
    return "\n".join(lines)


def render_inertia(analysis: InertiaAnalysis) -> str:
    """Section V.D: inertia in fixing vulnerabilities."""
    return "\n".join(
        [
            "SECTION V.D — INERTIA IN FIXING VULNERABILITIES",
            f"  2014 vulnerabilities already disclosed in 2012: "
            f"{analysis.carried} of {analysis.newer_total} "
            f"({analysis.carried_share * 100:.0f}%; paper: 249 of 586, 42%)",
            f"  of those, trivially exploitable (GET/POST/COOKIE): "
            f"{analysis.carried_easy} ({analysis.easy_share_of_carried * 100:.0f}%"
            f" of carried; paper: 59, 24%)",
        ]
    )


def render_robustness(evaluations: Dict[str, VersionEvaluation]) -> str:
    """Section V.E: responsiveness and robustness summary."""
    lines = ["SECTION V.E — ROBUSTNESS (files not analyzed / error messages)"]
    for version in sorted(evaluations):
        evaluation = evaluations[version]
        files = evaluation.corpus.total_files
        loc = evaluation.corpus.total_loc
        paper_files, paper_loc = PAPER_CORPUS[version]
        lines.append(
            f"  version {version}: {files} files, {loc} LOC "
            f"(paper: {paper_files} files, {paper_loc} LOC at scale 1.0)"
        )
        for tool in TOOL_ORDER:
            tool_eval = evaluation.tools.get(tool)
            if tool_eval is None:
                continue
            paper_failed = PAPER_FAILED_FILES[tool][version]
            note = f", errors={tool_eval.error_messages}" if tool == "Pixy" else ""
            lines.append(
                f"    {tool:10s} failed files={len(tool_eval.failed_files)} "
                f"(paper: {paper_failed}){note}"
            )
    return "\n".join(lines)


def render_markdown(
    evaluations: Dict[str, VersionEvaluation],
    older_overlap: OverlapAnalysis,
    newer_overlap: OverlapAnalysis,
    vectors: Dict[str, VectorBreakdown],
    inertia: InertiaAnalysis,
) -> str:
    """One self-contained markdown report of the whole evaluation.

    The mechanical counterpart of EXPERIMENTS.md: regenerates every
    experiment's measured values from a live run, ready to commit.
    """
    lines = ["# phpSAFE reproduction — evaluation report", ""]

    lines.append("## Table I — per-tool detection")
    lines.append("")
    lines.append("| Tool | Version | XSS TP | XSS FP | SQLi TP | SQLi FP | Precision | Recall | F-score |")
    lines.append("|---|---|---|---|---|---|---|---|---|")
    for tool in TOOL_ORDER:
        for version in sorted(evaluations):
            evaluation = evaluations[version]
            xss = evaluation.confusion(tool, VulnKind.XSS)
            sqli = evaluation.confusion(tool, VulnKind.SQLI)
            total = evaluation.confusion(tool)
            lines.append(
                f"| {tool} | {version} | {xss.tp} | {xss.fp} | {sqli.tp} | "
                f"{sqli.fp} | {percent(total.precision)} | "
                f"{percent(total.recall)} | {percent(total.f_score)} |"
            )
    lines.append("")

    lines.append("## Fig. 2 — detection overlap")
    lines.append("")
    for analysis in (older_overlap, newer_overlap):
        lines.append(
            f"- **{analysis.version}**: {analysis.union_total} distinct "
            f"(paper: {PAPER_DISTINCT.get(analysis.version, '?')}); regions: "
            + ", ".join(
                f"{region.label} = {region.count}"
                for region in sorted(
                    analysis.regions,
                    key=lambda r: (len(r.tools), sorted(r.tools)),
                )
            )
        )
    lines.append("")

    lines.append("## Table II — input vectors")
    lines.append("")
    lines.append("| Vector | " + " | ".join(sorted(vectors)) + " |")
    lines.append("|---|" + "---|" * len(vectors))
    for label in TABLE2_ROWS:
        cells = " | ".join(str(vectors[key].row(label)) for key in sorted(vectors))
        lines.append(f"| {label} | {cells} |")
    lines.append("")

    lines.append("## Section V.D — fix inertia")
    lines.append("")
    lines.append(
        f"- carried into the newer version: **{inertia.carried}** of "
        f"{inertia.newer_total} ({inertia.carried_share * 100:.0f}%)"
    )
    lines.append(
        f"- trivially exploitable among carried: **{inertia.carried_easy}** "
        f"({inertia.easy_share_of_carried * 100:.0f}%)"
    )
    lines.append("")

    lines.append("## Table III — detection time")
    lines.append("")
    lines.append("| Tool | " + " | ".join(
        f"{v} s (s/KLOC)" for v in sorted(evaluations)) + " |")
    lines.append("|---|" + "---|" * len(evaluations))
    for tool in TOOL_ORDER:
        cells = []
        for version in sorted(evaluations):
            tool_eval = evaluations[version].tools.get(tool)
            if tool_eval is None:
                cells.append("-")
            else:
                cells.append(
                    f"{tool_eval.seconds_mean:.2f} ({tool_eval.seconds_per_kloc:.3f})"
                )
        lines.append(f"| {tool} | " + " | ".join(cells) + " |")
    lines.append("")

    lines.append("## Section V.E — robustness")
    lines.append("")
    for version in sorted(evaluations):
        evaluation = evaluations[version]
        for tool in TOOL_ORDER:
            tool_eval = evaluation.tools.get(tool)
            if tool_eval is None:
                continue
            lines.append(
                f"- {tool} {version}: {len(tool_eval.failed_files)} failed "
                f"file(s), {tool_eval.error_messages} error message(s)"
            )
    return "\n".join(lines) + "\n"

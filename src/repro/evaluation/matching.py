"""Finding ↔ ground-truth matching (the expert-verification stand-in).

The paper's step 5: every tool report was "manually verified by a
security expert looking for misclassification issues".  Here the
generator's manifest is the expert: a finding matching a seeded
vulnerable flow is a true positive, anything else (bait or entirely
unmatched) is a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config.vulnerability import VulnKind
from ..core.results import Finding, ToolReport
from ..corpus.spec import GroundTruth, GroundTruthEntry


@dataclass
class ClassifiedFinding:
    """One reported finding with its expert verdict."""

    plugin: str
    finding: Finding
    entry: Optional[GroundTruthEntry]  # matched manifest entry, if any

    @property
    def is_tp(self) -> bool:
        return self.entry is not None and self.entry.spec.is_vulnerable


@dataclass
class MatchResult:
    """All classified findings of one tool over one corpus version."""

    tool: str
    version: str
    classified: List[ClassifiedFinding] = field(default_factory=list)
    #: spec ids of the vulnerable flows this tool detected
    detected_ids: Set[str] = field(default_factory=set)

    def counts(self, kind: Optional[VulnKind] = None) -> Tuple[int, int]:
        """(TP, FP) over all findings, optionally restricted to a kind."""
        tp = fp = 0
        for item in self.classified:
            if kind is not None and item.finding.kind is not kind:
                continue
            if item.is_tp:
                tp += 1
            else:
                fp += 1
        return tp, fp

    def detected_ids_of(self, kind: VulnKind, truth: GroundTruth) -> Set[str]:
        """Detected vulnerable spec ids restricted to one kind."""
        kinds: Dict[str, VulnKind] = {
            entry.spec.spec_id: entry.spec.kind for entry in truth.vulnerabilities()
        }
        return {
            spec_id for spec_id in self.detected_ids if kinds.get(spec_id) is kind
        }


def match_report(
    report: ToolReport, truth: GroundTruth, plugin: str, version: str
) -> MatchResult:
    """Classify one plugin report against the manifest."""
    result = MatchResult(tool=report.tool, version=version)
    accumulate_report(result, report, truth, plugin)
    return result


def accumulate_report(
    result: MatchResult, report: ToolReport, truth: GroundTruth, plugin: str
) -> None:
    """Fold one plugin's report into a corpus-wide match result."""
    for finding in report.findings:
        entry = truth.lookup(plugin, finding.kind.value, finding.file, finding.line)
        classified = ClassifiedFinding(plugin=plugin, finding=finding, entry=entry)
        result.classified.append(classified)
        if classified.is_tp:
            assert entry is not None
            result.detected_ids.add(entry.spec.spec_id)

"""Attack payloads per vulnerability kind.

Each payload embeds a unique marker so the confirmer can recognize it in
the captured side effects, and a *detection rule* distinguishing a raw
(exploitable) occurrence from a sanitized one — e.g. an XSS payload that
went through ``htmlentities`` appears as ``&lt;xss-...&gt;`` and must
not count as confirmed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..config.vulnerability import VulnKind

_counter = itertools.count(1)


@dataclass(frozen=True)
class Payload:
    """One attack string with its raw-occurrence detection rule."""

    kind: VulnKind
    text: str
    marker: str

    def appears_raw_in(self, haystack: str) -> bool:
        """True when the payload survived to ``haystack`` unsanitized."""
        if self.kind is VulnKind.XSS:
            return f"<xss-{self.marker}>" in haystack
        if self.kind is VulnKind.SQLI:
            # the quote must be unescaped: addslashes/prepare produce \'
            needle = f"' OR 'sqli-{self.marker}"
            index = haystack.find(needle)
            while index != -1:
                if index == 0 or haystack[index - 1] != "\\":
                    return True
                index = haystack.find(needle, index + 1)
            return False
        if self.kind is VulnKind.CMDI:
            # the separator must be unescaped and unquoted
            needle = f"; echo cmdi-{self.marker}"
            index = haystack.find(needle)
            while index != -1:
                before = haystack[:index]
                if (index == 0 or haystack[index - 1] != "\\") and (
                    before.count("'") % 2 == 0
                ):
                    return True
                index = haystack.find(needle, index + 1)
            return False
        if self.kind is VulnKind.LFI:
            return f"../../lfi-{self.marker}" in haystack
        # pack-introduced kinds: the generic payload embeds the marker
        # verbatim, so a raw (unencoded) occurrence confirms the flow
        return f"{self.kind.value}-{self.marker}" in haystack


def make_payload(kind: VulnKind) -> Payload:
    """A fresh payload for ``kind`` with a unique marker."""
    marker = f"m{next(_counter):04d}"
    if kind is VulnKind.XSS:
        text = f"<xss-{marker}>"
    elif kind is VulnKind.SQLI:
        text = f"1' OR 'sqli-{marker}'='sqli-{marker}"
    elif kind is VulnKind.CMDI:
        text = f"x; echo cmdi-{marker}"
    elif kind is VulnKind.LFI:
        text = f"../../lfi-{marker}"
    else:
        # pack-introduced kinds get a marker-bearing generic payload
        # (e.g. ``http://ssrf-m0001.invalid/`` for an ssrf finding)
        text = f"http://{kind.value}-{marker}.invalid/"
    return Payload(kind=kind, text=text, marker=marker)

"""Simulated WordPress runtime services for exploit confirmation.

Configures a :class:`~repro.php.interp.Interpreter` as an *attack
runtime*: every external input an attacker can influence — request
superglobals, database content, option storage, file contents — returns
the attack payload, and every sensitive operation (SQL, shell commands,
includes) is recorded instead of executed.  This is the dynamic
equivalent of the paper's manual exploitation experiments.
"""

from __future__ import annotations

from typing import List

from ..php.interp import (
    Interpreter,
    MagicTaintArray,
    PhpArray,
    PhpObject,
    to_php_string,
)


class _PayloadDict(dict):
    """Property map answering every unknown key with the payload —
    models a database row whose every column the attacker wrote."""

    def __init__(self, payload: str) -> None:
        super().__init__(field=payload)
        self._payload = payload

    def get(self, key, default=None):  # noqa: D102
        if key in self:
            return super().get(key)
        return self._payload


class PayloadRowObject(PhpObject):
    """A result-row object with attacker-controlled columns."""

    def __init__(self, payload: str) -> None:
        super().__init__("stdClass")
        self.properties = _PayloadDict(payload)


class PayloadRowArray(PhpArray):
    """A result-row array with attacker-controlled columns."""

    def __init__(self, payload: str) -> None:
        super().__init__({"field": payload})
        self._payload = payload

    def get(self, key):  # noqa: D102
        if self.has(key):
            return super().get(key)
        return self._payload

    def has(self, key) -> bool:
        return True


def build_attack_runtime(
    payload: str, rows: int = 2, privileged: bool = False
) -> Interpreter:
    """An interpreter where everything the attacker touches is payload.

    ``privileged=False`` models the paper's expert threat model: an
    unauthenticated attacker, so capability checks fail and
    capability-gated flows (the fp_shared bait population) do not
    confirm.  Pass ``privileged=True`` to assess insider exposure.
    """
    superglobals = {
        name: MagicTaintArray(payload)
        for name in ("_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER", "_FILES")
    }
    interp = Interpreter(superglobals=superglobals)
    effects = interp.effects

    # ---- $wpdb: the WordPress database object -------------------------
    wpdb = PhpObject("wpdb")
    wpdb.properties["prefix"] = "wp_"
    interp.globals.vars["wpdb"] = wpdb

    def record_query(args: List[object]) -> None:
        if args:
            interp.record_query(to_php_string(args[0]))

    def wpdb_get_results(obj: PhpObject, args: List[object]) -> PhpArray:
        record_query(args)
        return PhpArray(
            {index: PayloadRowObject(payload) for index in range(rows)}
        )

    def wpdb_get_row(obj: PhpObject, args: List[object]) -> PhpObject:
        record_query(args)
        return PayloadRowObject(payload)

    def wpdb_get_var(obj: PhpObject, args: List[object]) -> str:
        record_query(args)
        return payload

    def wpdb_get_col(obj: PhpObject, args: List[object]) -> PhpArray:
        record_query(args)
        return PhpArray({index: payload for index in range(rows)})

    def wpdb_query(obj: PhpObject, args: List[object]) -> int:
        record_query(args)
        return 1

    def wpdb_prepare(obj: PhpObject, args: List[object]) -> str:
        """Parameterized builder: placeholders get *escaped* values."""
        if not args:
            return ""
        template = to_php_string(args[0])
        escape = interp.builtins["addslashes"]
        result = template
        for value in args[1:]:
            escaped = to_php_string(escape([value]))
            for spec in ("%s", "%d", "%f"):
                if spec in result:
                    if spec == "%s":
                        result = result.replace(spec, "'" + escaped + "'", 1)
                    else:
                        result = result.replace(
                            spec, str(int(float(escaped or "0")) if escaped
                                      .replace(".", "").lstrip("-").isdigit() else 0), 1
                        )
                    break
        return result

    def wpdb_escape(obj: PhpObject, args: List[object]) -> str:
        return to_php_string(interp.builtins["addslashes"](args))

    interp.native_methods.update(
        {
            "wpdb::get_results": wpdb_get_results,
            "wpdb::get_row": wpdb_get_row,
            "wpdb::get_var": wpdb_get_var,
            "wpdb::get_col": wpdb_get_col,
            "wpdb::query": wpdb_query,
            "wpdb::prepare": wpdb_prepare,
            "wpdb::escape": wpdb_escape,
        }
    )

    # ---- mysql_* procedural API ----------------------------------------
    def mysql_query(args: List[object]) -> str:
        record_query(args)
        return "resource"

    interp.builtins["mysql_query"] = mysql_query
    interp.builtins["mysqli_query"] = lambda args: (
        record_query(args[1:]) or "resource"
    )
    for name in ("mysql_fetch_assoc", "mysql_fetch_array", "mysqli_fetch_assoc",
                 "mysqli_fetch_array"):
        interp.builtins[name] = lambda args: PayloadRowArray(payload)
    for name in ("mysql_fetch_object", "mysqli_fetch_object"):
        interp.builtins[name] = lambda args: PayloadRowObject(payload)
    interp.builtins["mysql_result"] = lambda args: payload

    # ---- WordPress option/meta storage (attacker-writable) --------------
    for name in ("get_option", "get_post_meta", "get_user_meta",
                 "get_comment_meta", "get_query_var", "get_search_query"):
        interp.builtins[name] = lambda args: payload

    # ---- file input ------------------------------------------------------
    interp.builtins["fopen"] = lambda args: "handle"
    interp.builtins["fclose"] = lambda args: True
    for name in ("fgets", "fread", "file_get_contents", "fgetc", "fgetss"):
        interp.builtins[name] = lambda args: payload

    # ---- privilege guards: pass only for an insider threat model --------
    interp.builtins["current_user_can"] = lambda args: privileged
    interp.builtins["check_admin_referer"] = lambda args: privileged
    interp.builtins["wp_verify_nonce"] = lambda args: privileged
    interp.builtins["is_admin"] = lambda args: privileged

    # ---- echo-ish WP helpers ---------------------------------------------
    interp.builtins["_e"] = lambda args: interp.record_output(
        to_php_string(args[0] if args else "")
    )
    interp.builtins["apply_filters"] = lambda args: args[1] if len(args) > 1 else None
    interp.builtins["shortcode_atts"] = lambda args: (
        args[1] if len(args) > 1 and isinstance(args[1], PhpArray) else
        MagicTaintArray(payload)
    )

    return interp

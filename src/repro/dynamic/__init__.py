"""Dynamic analysis: exploit confirmation of static findings.

The dynamic counterpart the paper discusses in Section II, automated:
run the plugin in a simulated attack runtime and check whether a static
finding's payload actually reaches the sensitive channel unsanitized.
"""

from .confirm import ExploitConfirmer, Status, Verdict, confirm_findings
from .payloads import Payload, make_payload
from .services import build_attack_runtime

__all__ = [
    "ExploitConfirmer",
    "Payload",
    "Status",
    "Verdict",
    "build_attack_runtime",
    "confirm_findings",
    "make_payload",
]

"""Dynamic exploit confirmation of static findings.

The paper's authors manually verified that reported flows were
exploitable ("which we confirmed in a experiment", Section III.E).
:class:`ExploitConfirmer` automates that step: for each static finding
it builds an attack runtime (everything the attacker controls returns a
kind-specific payload), executes the plugin file — and, for flows in
never-called functions, invokes every entry point of that file — then
checks whether the payload reached the corresponding side-effect
channel *unsanitized*.

A confirmed finding is dynamically proven exploitable under the
simulation's assumptions; an unconfirmed one is either a false alarm or
outside the interpreter's subset (status ``error``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..config.vulnerability import VulnKind
from ..core.results import Finding
from ..php import ast_nodes as ast
from ..php.errors import PhpSyntaxError
from ..php.interp import (
    Interpreter,
    MagicTaintArray,
    PhpRuntimeError,
    SideEffects,
)
from ..plugin import Plugin
from .payloads import Payload, make_payload
from .services import build_attack_runtime


class Status(enum.Enum):
    CONFIRMED = "confirmed"
    UNCONFIRMED = "unconfirmed"
    ERROR = "error"


@dataclass(frozen=True)
class Verdict:
    """Outcome of one confirmation attempt."""

    finding: Finding
    status: Status
    evidence: str = ""

    @property
    def confirmed(self) -> bool:
        return self.status is Status.CONFIRMED


class ExploitConfirmer:
    """Dynamically confirm static findings against a plugin."""

    def __init__(self, max_entry_points: int = 40, privileged: bool = False) -> None:
        self.max_entry_points = max_entry_points
        #: threat model: can the attacker pass capability/nonce checks?
        self.privileged = privileged

    # -- public API -------------------------------------------------------

    def confirm(self, plugin: Plugin, finding: Finding) -> Verdict:
        payload = make_payload(finding.kind)
        try:
            interp = self._load_runtime(plugin, payload)
        except PhpSyntaxError as error:
            return Verdict(finding, Status.ERROR, f"parse failure: {error}")
        try:
            interp.run_file(finding.file)
        except PhpRuntimeError as error:
            return Verdict(finding, Status.ERROR, str(error))
        except KeyError:
            return Verdict(finding, Status.ERROR, f"file not loaded: {finding.file}")
        evidence = self._check(interp.effects, payload, finding)
        if evidence:
            return Verdict(finding, Status.CONFIRMED, evidence)

        # the flow may live in a function WordPress core calls: invoke
        # every entry point defined in the finding's file
        try:
            self._drive_entry_points(interp, plugin, finding, payload)
        except PhpRuntimeError as error:
            return Verdict(finding, Status.ERROR, str(error))
        evidence = self._check(interp.effects, payload, finding)
        if evidence:
            return Verdict(finding, Status.CONFIRMED, evidence)
        return Verdict(finding, Status.UNCONFIRMED)

    def confirm_all(self, plugin: Plugin, findings: List[Finding]) -> List[Verdict]:
        return [self.confirm(plugin, finding) for finding in findings]

    # -- internals ------------------------------------------------------------

    def _load_runtime(self, plugin: Plugin, payload: Payload) -> Interpreter:
        interp = build_attack_runtime(payload.text, privileged=self.privileged)
        last_error: Optional[PhpSyntaxError] = None
        loaded = 0
        for path, source in plugin.iter_files():
            try:
                interp.load_source(source, path)
                loaded += 1
            except PhpSyntaxError as error:
                last_error = error
        if loaded == 0 and last_error is not None:
            raise last_error
        return interp

    def _drive_entry_points(
        self,
        interp: Interpreter,
        plugin: Plugin,
        finding: Finding,
        payload: Payload,
    ) -> None:
        tree = interp.files.get(finding.file)
        if tree is None:
            return
        interp.current_file = finding.file
        driven = 0
        for statement in tree.statements:
            if driven >= self.max_entry_points:
                return
            if isinstance(statement, ast.FunctionDecl):
                args = [
                    MagicTaintArray(payload.text) if "att" in param.name or
                    isinstance(param.type_hint, str) and param.type_hint == "array"
                    else payload.text
                    for param in statement.params
                ]
                try:
                    interp.call_function(statement.name, args)
                except PhpRuntimeError:
                    pass
                driven += 1
            elif isinstance(statement, ast.ClassDecl) and statement.kind == "class":
                try:
                    obj = interp.instantiate(statement.name, [])
                except PhpRuntimeError:
                    continue
                for method in statement.methods:
                    if driven >= self.max_entry_points:
                        return
                    if method.body is None or method.name.startswith("__"):
                        continue
                    args: List[object] = [payload.text for _ in method.params]
                    try:
                        interp.call_method(obj, method.name, args)
                    except PhpRuntimeError:
                        pass
                    driven += 1

    @staticmethod
    def _check(
        effects: SideEffects, payload: Payload, finding: Optional[Finding] = None
    ) -> str:
        """Find raw payload evidence in the right side-effect channel.

        Evidence is attributed by site: only entries recorded at the
        finding's file and (within two lines of) its sink line count,
        so a second vulnerable flow elsewhere in the file cannot
        "confirm" an unrelated finding.
        """
        channels = {
            VulnKind.XSS: ("page output", effects.output, effects.output_sites),
            VulnKind.SQLI: ("SQL query log", effects.queries, effects.query_sites),
            VulnKind.CMDI: ("command log", effects.commands, effects.command_sites),
            VulnKind.LFI: ("include log", effects.includes, effects.include_sites),
        }
        name, entries, sites = channels[payload.kind]
        for entry, site in zip(entries, sites):
            if finding is not None:
                site_file, site_line = site
                if site_file != finding.file or abs(site_line - finding.line) > 2:
                    continue
            if payload.appears_raw_in(entry):
                snippet_at = entry.find(payload.marker)
                start = max(0, snippet_at - 40)
                snippet = entry[start:snippet_at + 20].replace("\n", " ")
                return f"payload reached {name}: ...{snippet}..."
        return ""


def confirm_findings(plugin: Plugin, findings: List[Finding]) -> List[Verdict]:
    """Convenience wrapper: confirm every finding of a plugin."""
    return ExploitConfirmer().confirm_all(plugin, findings)

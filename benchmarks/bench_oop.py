"""Benchmark + reproduction of Section V.A's OOP claim (experiment E6).

"phpSAFE found 151 vulnerabilities related to the use of WordPress
objects in 10 plugins of the 2012 version, and 179 vulnerabilities in 7
plugins of the 2014 version.  RIPS and Pixy were not able to detect any
vulnerability of this kind."

Measured operation: phpSAFE's analysis of the OOP-vulnerability plugins
only (the OOP resolution hot path).  Shape checks: the counts above.
"""

import pytest

from repro.core import PhpSafe
from repro.evaluation import PAPER_OOP

EXPECTED = {"2012": (151, 10), "2014": (179, 7)}


@pytest.mark.parametrize("version", ["2012", "2014"])
def test_oop_vulnerability_detection(
    benchmark, corpus_2012, corpus_2014, evaluations, version
):
    corpus = corpus_2012 if version == "2012" else corpus_2014
    oop_entries = [
        entry for entry in corpus.truth.vulnerabilities() if entry.spec.via_oop
    ]
    oop_ids = {entry.spec.spec_id for entry in oop_entries}
    oop_plugins = sorted({entry.plugin for entry in oop_entries})
    expected_count, expected_plugins = EXPECTED[version]
    assert len(oop_ids) == expected_count == PAPER_OOP[version][0]
    assert len(oop_plugins) == expected_plugins == PAPER_OOP[version][1]

    tool = PhpSafe()
    targets = [plugin for plugin in corpus.plugins if plugin.name in oop_plugins]

    def analyze_oop_plugins():
        return [tool.analyze(plugin) for plugin in targets]

    benchmark.pedantic(analyze_oop_plugins, rounds=1, iterations=1)

    evaluation = evaluations[version]
    assert oop_ids <= evaluation.tools["phpSAFE"].match.detected_ids
    assert not oop_ids & evaluation.tools["RIPS"].match.detected_ids
    assert not oop_ids & evaluation.tools["Pixy"].match.detected_ids
    print(
        f"\nOOP vulnerabilities {version}: {len(oop_ids)} in "
        f"{len(oop_plugins)} plugins (paper: {PAPER_OOP[version]}), "
        "detected by phpSAFE only"
    )

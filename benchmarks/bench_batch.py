"""Benchmark the batch-scan subsystem: serial vs parallel vs warm cache.

Three configurations over the generated 2012 corpus:

- ``serial``: the paper-faithful in-process loop (``jobs=1``, no cache);
- ``parallel``: the ``ProcessPoolExecutor`` fan-out (``jobs=N``);
- ``warm-cache``: ``jobs=N`` re-run against a pre-populated persistent
  cache directory, where no file is re-parsed.

Parallel speedup tracks the host's core count (a single-core CI box
shows pool overhead instead); the warm-cache run must beat the cold one
regardless since parsing dominates scan cost.  Every configuration must
produce the identical findings set.
"""

import os

import pytest

from repro.batch import BatchOptions, BatchScanner, ToolSpec

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1))))

_FINDINGS = {}


def _finding_keys(reports):
    return sorted(
        (report.plugin, finding.key)
        for report in reports
        for finding in report.findings
    )


def _scan(plugins, jobs, cache_dir=None):
    scanner = BatchScanner(
        ToolSpec("phpsafe"), BatchOptions(jobs=jobs, cache_dir=cache_dir)
    )
    return scanner.scan(plugins)


@pytest.mark.parametrize("mode", ["serial", "parallel", "warm-cache"])
def test_batch_scan_modes(benchmark, corpus_2012, tmp_path_factory, mode):
    plugins = corpus_2012.plugins
    cache_dir = None
    jobs = 1 if mode == "serial" else JOBS
    if mode == "warm-cache":
        cache_dir = str(tmp_path_factory.mktemp("parse-cache"))
        _scan(plugins, jobs=jobs, cache_dir=cache_dir)  # populate

    result = benchmark.pedantic(
        _scan, args=(plugins, jobs, cache_dir), rounds=2, iterations=1
    )
    telemetry = result.telemetry
    _FINDINGS[mode] = _finding_keys(result.reports)
    print(
        f"\n{mode}: jobs={jobs} {telemetry.wall_seconds:.3f}s wall, "
        f"{telemetry.files_per_second:.0f} files/s, "
        f"cache hit rate {telemetry.cache_hit_rate:.0%}"
    )
    if mode == "warm-cache":
        assert telemetry.cache_hit_rate > 0.9


def test_batch_modes_agree():
    """All configurations must report the identical findings set."""
    if len(_FINDINGS) < 3:
        pytest.skip("batch benches did not run (collection subset)")
    assert _FINDINGS["serial"] == _FINDINGS["parallel"] == _FINDINGS["warm-cache"]

"""Benchmark + reproduction of Table III (detection time, all plugins).

This *is* the paper's responsiveness experiment: wall-clock analysis
time of the whole corpus per tool and version (the paper averages five
runs on an i5; pytest-benchmark handles the averaging here).  Absolute
seconds depend on the host and corpus scale — the reported shape is the
per-KLOC cost and the tool ordering trends:

- phpSAFE is the cheapest per KLOC on the 2012 corpus (it skips the
  oversized include-closure file that RIPS inlines);
- phpSAFE and RIPS converge on the 2014 corpus ("took approximately the
  same time");
- all tools stay within the same order of magnitude ("should scale to
  larger files").
"""

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.core import PhpSafe
from repro.evaluation import PAPER_TABLE3

TOOLS = {"phpSAFE": PhpSafe, "RIPS": RipsLike, "Pixy": PixyLike}

_RESULTS = {}


@pytest.mark.parametrize("version", ["2012", "2014"])
@pytest.mark.parametrize("tool_name", list(TOOLS))
def test_table3_detection_time(
    benchmark, corpus_2012, corpus_2014, version, tool_name
):
    corpus = corpus_2012 if version == "2012" else corpus_2014
    tool = TOOLS[tool_name]()

    def run_all():
        return [tool.analyze(plugin) for plugin in corpus.plugins]

    reports = benchmark.pedantic(run_all, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    kloc = sum(report.loc_analyzed for report in reports) / 1000.0
    _RESULTS[(version, tool_name)] = (seconds, seconds / kloc if kloc else 0.0)
    print(
        f"\n{tool_name} v{version}: {seconds:.3f}s, "
        f"{seconds / kloc if kloc else 0:.3f}s/KLOC "
        f"(paper: {PAPER_TABLE3[tool_name][version]}s on 90/181 KLOC)"
    )


def test_table3_shape():
    """Check the Table III orderings once every timing ran."""
    if len(_RESULTS) < 6:
        pytest.skip("timing benches did not run (collection subset)")
    # phpSAFE's 2012 per-KLOC cost beats RIPS's (it skips the huge file)
    assert _RESULTS[("2012", "phpSAFE")][1] <= _RESULTS[("2012", "RIPS")][1] * 1.25
    # 2014: phpSAFE and RIPS within 2x of each other (paper: equal)
    ps = _RESULTS[("2014", "phpSAFE")][0]
    rips = _RESULTS[("2014", "RIPS")][0]
    assert 0.5 <= ps / rips <= 2.0
    # every tool within one order of magnitude of the others per version
    for version in ("2012", "2014"):
        times = [_RESULTS[(version, tool)][0] for tool in TOOLS]
        assert max(times) / min(times) < 10.0

"""Benchmark + validation of the dynamic confirmation harness (ours).

The paper's authors manually confirmed exploitability of reported
flows; the harness automates that.  This bench measures confirmation
throughput on a corpus plugin and validates the precision property
that motivates the whole exercise: seeded *vulnerable* flows confirm,
seeded *false-alarm baits* do not.
"""

import pytest

from repro.core import PhpSafe
from repro.dynamic import ExploitConfirmer, Status


@pytest.fixture(scope="module")
def oop_plugin(corpus_2014):
    return corpus_2014.plugin("mail-subscribe-list")


def test_confirmation_throughput(benchmark, corpus_2014, oop_plugin):
    report = PhpSafe().analyze(oop_plugin)
    assert report.findings
    confirmer = ExploitConfirmer()

    def confirm_all():
        return confirmer.confirm_all(oop_plugin, report.findings)

    verdicts = benchmark.pedantic(confirm_all, rounds=1, iterations=1)
    assert len(verdicts) == len(report.findings)


def test_confirmation_separates_vulns_from_baits(corpus_2014, oop_plugin):
    """Confirmed ⊇ most seeded vulns; baits stay unconfirmed."""
    report = PhpSafe().analyze(oop_plugin)
    confirmer = ExploitConfirmer()
    confirmed_vuln = confirmed_bait = vuln_total = bait_total = errors = 0
    for finding in report.findings:
        entry = corpus_2014.truth.lookup(
            oop_plugin.name, finding.kind.value, finding.file, finding.line
        )
        if entry is None:
            continue
        verdict = confirmer.confirm(oop_plugin, finding)
        if verdict.status is Status.ERROR:
            errors += 1
            continue
        if entry.spec.is_vulnerable:
            vuln_total += 1
            confirmed_vuln += verdict.confirmed
        else:
            bait_total += 1
            confirmed_bait += verdict.confirmed
    print(
        f"\nconfirmed {confirmed_vuln}/{vuln_total} seeded vulnerabilities, "
        f"{confirmed_bait}/{bait_total} baits, {errors} inconclusive"
    )
    assert vuln_total > 0
    # the harness must confirm a clear majority of true vulnerabilities
    assert confirmed_vuln >= 0.7 * vuln_total
    # and must not "confirm" more than a sliver of expert-rejected baits
    if bait_total:
        assert confirmed_bait <= 0.34 * bait_total

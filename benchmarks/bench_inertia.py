"""Benchmark + reproduction of Section V.D (inertia in fixing vulns).

Measured operation: the cross-version carry-over matching.  Shape
checks: ~40% of the 2014 vulnerabilities were already present (and
disclosed) in 2012, and a quarter of those are trivially exploitable.
"""

from repro.evaluation import analyze_inertia, render_inertia


def test_inertia_carryover(benchmark, evaluations):
    older = evaluations["2012"]
    newer = evaluations["2014"]

    analysis = benchmark(lambda: analyze_inertia(older, newer))

    # paper: 249 of 586 (42%); Table II's own "Both versions" column
    # sums to 232 (40%) — the reproduction matches the table
    assert analysis.carried == 232
    assert 0.35 <= analysis.carried_share <= 0.45
    # paper: 59 easy-to-exploit carried vulnerabilities (24%)
    assert 50 <= analysis.carried_easy <= 75
    assert 0.20 <= analysis.easy_share_of_carried <= 0.35

    print()
    print(render_inertia(analysis))

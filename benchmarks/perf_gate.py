"""Performance gate: records the repo's perf trajectory in BENCH_*.json.

The paper reports analysis time as a first-class result (Table 5 /
Table III); this harness gives every PR a number to beat.  It measures
two layers through public APIs only (so the same script runs unchanged
across refactors):

- **substrate** (``BENCH_substrate.json``): lexer tokens/s, parser
  statements/s and end-to-end analyzer wall time on a representative
  ~900-line OOP plugin file (the same workload as
  ``bench_substrate.py``).
- **scan** (``BENCH_scan.json``): a two-version corpus scan through a
  persistent cache directory — the paper's dominant workload (the 2014
  version of a plugin re-scanned after the 2012 version, most files
  unchanged) — cold and warm.
- **rescan** (``BENCH_rescan.json``): the diff-aware incremental path —
  the largest corpus plugin with one file changed, rescanned against
  the prior scan's manifest vs cold-scanned from scratch.  Asserts
  finding parity and records the warm/cold speedup the planner buys.

Usage::

    python benchmarks/perf_gate.py --record-baseline   # before a perf PR
    python benchmarks/perf_gate.py                     # after: adds "current"
    python benchmarks/perf_gate.py --quick             # CI smoke (trend only)

Each JSON file keeps a ``baseline`` section (written once by
``--record-baseline``, preserved afterwards) and a ``current`` section
(rewritten on every run) plus the derived ``speedup`` ratios.  Numbers
are machine-dependent; the ``calibration`` field (a fixed pure-Python
workload's ops/s) lets different machines be compared approximately —
see EXPERIMENTS.md, "Performance methodology".
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchgate import calibration as _calibration  # noqa: E402
from repro.benchgate import merge_bench  # noqa: E402
from repro.core import PhpSafe  # noqa: E402
from repro.corpus import build_corpus  # noqa: E402
from repro.php import parse_source, tokenize_significant  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# the bench_substrate workload: OOP + interpolation + control flow
_UNIT = (
    "class Gallery_N {{\n"
    "    public $items = array();\n"
    "    public function load($limit) {{\n"
    "        global $wpdb;\n"
    "        $rows = $wpdb->get_results(\"SELECT * FROM {{$wpdb->prefix}}gallery\");\n"
    "        foreach ($rows as $row) {{\n"
    "            $this->items[] = $row;\n"
    "        }}\n"
    "    }}\n"
    "    public function render() {{\n"
    "        foreach ($this->items as $item) {{\n"
    "            echo '<li>' . esc_html($item->title) . '</li>';\n"
    "        }}\n"
    "    }}\n"
    "}}\n"
    "function gallery_shortcode_{index}($atts) {{\n"
    "    $args = shortcode_atts(array('n' => 10), $atts);\n"
    "    $g = new Gallery_{index}();\n"
    "    $g->load(intval($args['n']));\n"
    "    $g->render();\n"
    "}}\n"
)
SAMPLE = "<?php\n" + "".join(
    _UNIT.replace("Gallery_N", "Gallery_{index}").format(index=i) for i in range(40)
)


def _best_of(repetitions: int, fn) -> float:
    """Best-of-N wall time (insulates against scheduler noise)."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_substrate(repetitions: int) -> dict:
    tokens = tokenize_significant(SAMPLE)
    tree = parse_source(SAMPLE)
    lexer_s = _best_of(repetitions, lambda: tokenize_significant(SAMPLE))
    parser_s = _best_of(repetitions, lambda: parse_source(SAMPLE))
    analyzer_s = _best_of(
        max(1, repetitions // 2), lambda: PhpSafe().analyze_source(SAMPLE)
    )
    return {
        "sample_bytes": len(SAMPLE),
        "sample_tokens": len(tokens),
        "sample_statements": len(tree.statements),
        "lexer_seconds": round(lexer_s, 6),
        "parser_seconds": round(parser_s, 6),
        "analyzer_seconds": round(analyzer_s, 6),
        "tokens_per_second": round(len(tokens) / lexer_s, 1),
        "statements_per_second": round(len(tree.statements) / parser_s, 1),
    }


def bench_scan(scale: float, repetitions: int) -> dict:
    """Two-version corpus scan through a persistent cache directory.

    ``cold`` parses everything; ``warm`` re-scans both versions with a
    fresh tool over the same cache directory — the incremental-analysis
    case the paper's corpus (35 plugins x 2 versions, most files shared)
    is dominated by.
    """
    corpora = [build_corpus("2012", scale=scale), build_corpus("2014", scale=scale)]
    total_loc = sum(corpus.total_loc for corpus in corpora)
    total_files = sum(corpus.total_files for corpus in corpora)

    def scan_all(cache_dir: str) -> tuple:
        findings = []
        start = time.perf_counter()
        tool = PhpSafe(cache_dir=cache_dir)
        for corpus in corpora:
            for plugin in corpus.plugins:
                report = tool.analyze(plugin)
                findings.extend(
                    (plugin.slug, f.kind.value, f.file, f.line) for f in report.findings
                )
        return time.perf_counter() - start, sorted(findings)

    cold_s = warm_s = float("inf")
    cold_findings = warm_findings = None
    for _ in range(repetitions):
        tmp = tempfile.mkdtemp(prefix="perf-gate-")
        try:
            seconds, found = scan_all(tmp)
            if seconds < cold_s:
                cold_s, cold_findings = seconds, found
            seconds, found = scan_all(tmp)  # same dir: warm
            if seconds < warm_s:
                warm_s, warm_findings = seconds, found
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    assert cold_findings == warm_findings, "cache changed the findings"
    return {
        "scale": scale,
        "corpus_files": total_files,
        "corpus_loc": total_loc,
        "findings": len(cold_findings or []),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "cold_loc_per_second": round(total_loc / cold_s, 1),
        "warm_loc_per_second": round(total_loc / warm_s, 1),
    }


def bench_rescan(scale: float, repetitions: int) -> dict:
    """One-file-changed incremental rescan vs cold full scan.

    Workload: the largest plugin of the 2014 corpus.  An initial
    tracked scan produces the per-file digest manifest; one file then
    grows a tainted-echo block (the canonical plugin update), and the
    mutated plugin is analyzed both ways.  The two runs must produce
    identical finding signatures — speed that changes results is a bug,
    not a benchmark.
    """
    import dataclasses

    from repro.core import ModelCache
    from repro.core.results import finding_signatures

    corpus = build_corpus("2014", scale=scale)
    plugin = max(
        corpus.plugins,
        key=lambda p: sum(len(source) for source in p.files.values()),
    )
    # warm side = the product configuration: a long-lived tool with a
    # live parse/summary cache plus the prior scan's manifest
    tool = PhpSafe(cache=ModelCache())
    _report, manifest, _stats = tool.rescan(plugin)

    # mutate a file that is an actual analysis root (not, say, one of
    # the corpus's deliberately-broken legacy files) so the rescan has
    # exactly one unit to re-run
    target = min(root for root in manifest["roots"] if root in plugin.files)
    files = dict(plugin.files)
    files[target] = files[target] + "\n<?php echo $_GET['rescan_mutation'];\n"
    mutated = dataclasses.replace(plugin, files=files)

    cold_s = float("inf")
    cold_signatures = None
    for _ in range(repetitions):
        # the cold side must stay genuinely cold: opt out of the
        # process-wide artifact cache so the warm/cold ratio keeps
        # measuring the incremental planner, not the L1 cache
        fresh = PhpSafe(use_process_cache=False)
        start = time.perf_counter()
        report = fresh.analyze(mutated)
        cold_s = min(cold_s, time.perf_counter() - start)
        cold_signatures = finding_signatures([report])

    warm_s = float("inf")
    warm_signatures = None
    stats = None
    for _ in range(repetitions):
        start = time.perf_counter()
        warm_report, _new_manifest, stats = tool.rescan(mutated, manifest)
        warm_s = min(warm_s, time.perf_counter() - start)
        warm_signatures = finding_signatures([warm_report])
    assert stats is not None and stats.incremental, (
        f"rescan fell back to a full scan: {stats.fallback_reason!r}"
    )
    assert cold_signatures == warm_signatures, (
        "incremental rescan changed the findings"
    )
    return {
        "scale": scale,
        "plugin": plugin.slug,
        "plugin_files": len(plugin.files),
        "roots_total": stats.roots_total,
        "roots_reused": stats.roots_reused,
        "changed_files": len(stats.changed_files),
        "findings": len(cold_signatures or ()),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
    }


def _merge(path: str, section: dict, record_baseline: bool, quick: bool) -> dict:
    return merge_bench(
        path, section, record_baseline, quick, calibration_ops=_CALIBRATION
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer repetitions, smaller corpus scale",
    )
    parser.add_argument(
        "--record-baseline", action="store_true",
        help="overwrite the baseline section with this run's numbers",
    )
    parser.add_argument(
        "--out-dir", default=REPO_ROOT, help="directory for the BENCH_*.json files"
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale override (default 0.25, quick 0.1)")
    args = parser.parse_args(argv)

    repetitions = 3 if args.quick else 7
    scale = args.scale if args.scale is not None else (0.1 if args.quick else 0.25)
    os.makedirs(args.out_dir, exist_ok=True)

    global _CALIBRATION
    _CALIBRATION = _calibration()

    substrate = bench_substrate(repetitions)
    scan = bench_scan(scale, 1 if args.quick else 2)
    rescan = bench_rescan(scale, 2 if args.quick else 3)

    substrate_data = _merge(
        os.path.join(args.out_dir, "BENCH_substrate.json"),
        substrate, args.record_baseline, args.quick,
    )
    scan_data = _merge(
        os.path.join(args.out_dir, "BENCH_scan.json"),
        scan, args.record_baseline, args.quick,
    )
    rescan_data = _merge(
        os.path.join(args.out_dir, "BENCH_rescan.json"),
        rescan, args.record_baseline, args.quick,
    )
    print("substrate:", json.dumps(substrate_data["current"], indent=1))
    print("substrate speedup vs baseline:", substrate_data["speedup_vs_baseline"])
    print(
        "substrate speedup (calibration-normalized):",
        substrate_data["speedup_vs_baseline_normalized"],
    )
    print("scan:", json.dumps(scan_data["current"], indent=1))
    print("scan speedup vs baseline:", scan_data["speedup_vs_baseline"])
    print(
        "scan speedup (calibration-normalized):",
        scan_data["speedup_vs_baseline_normalized"],
    )
    print("rescan:", json.dumps(rescan_data["current"], indent=1))
    print(
        "rescan warm speedup (cold full scan / incremental):",
        rescan_data["current"]["warm_speedup"],
    )
    return 0


_CALIBRATION = 0.0

if __name__ == "__main__":
    sys.exit(main())

"""Benchmark + reproduction of Section V.E robustness.

"RIPS succeeded in completing the analysis of all files, while phpSAFE
was unable to analyze one file in the 2012 version and three files in
the 2014 version.  Pixy failed to complete the analysis on 32 files.
Moreover, Pixy raised one error message in the 2012 versions and 37 in
the 2014 versions."

Measured operation: analysis of the robustness-critical plugins (the
ones holding oversized include closures and PHP-5-only constructs).
"""

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.core import PhpSafe
from repro.evaluation import PAPER_FAILED_FILES, render_robustness

EXPECTED_FAILED = {
    ("2012", "phpSAFE"): 1,
    ("2012", "RIPS"): 0,
    ("2012", "Pixy"): 1,
    ("2014", "phpSAFE"): 3,
    ("2014", "RIPS"): 0,
    ("2014", "Pixy"): 31,
}
EXPECTED_PIXY_ERRORS = {"2012": 1, "2014": 37}


@pytest.mark.parametrize("version", ["2012", "2014"])
def test_robustness_failed_files(
    benchmark, corpus_2012, corpus_2014, evaluations, version
):
    corpus = corpus_2012 if version == "2012" else corpus_2014
    # the failed-file plugin exercises the budget/robustness machinery
    target = corpus.plugin("wp-bulk-manager")
    tools = [PhpSafe(), RipsLike(), PixyLike()]

    def analyze_critical():
        return [tool.analyze(target) for tool in tools]

    benchmark.pedantic(analyze_critical, rounds=1, iterations=1)

    evaluation = evaluations[version]
    for tool in ("phpSAFE", "RIPS", "Pixy"):
        failed = len(evaluation.tools[tool].failed_files)
        assert failed == EXPECTED_FAILED[(version, tool)] == (
            PAPER_FAILED_FILES[tool][version]
        )
    assert (
        evaluation.tools["Pixy"].error_messages == EXPECTED_PIXY_ERRORS[version]
    )
    if version == "2014":
        print()
        print(render_robustness(evaluations))

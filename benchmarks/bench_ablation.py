"""Ablation benchmark (experiment A1, ours).

Quantifies each phpSAFE design choice from DESIGN.md on the 2014
corpus by re-running phpSAFE with one capability removed and counting
the lost true positives:

- ``oop=False``        loses the 179 OOP-mediated vulnerabilities;
- ``analyze_uncalled=False`` loses the entry-point flows;
- ``wordpress_config=False`` loses WP-source flows *and* OOP entries
  (``$wpdb`` methods come from the WordPress profile).
"""

import pytest

from repro.core import PhpSafe, PhpSafeOptions
from repro.evaluation.matching import MatchResult, accumulate_report

VARIANTS = {
    "full": PhpSafeOptions(),
    "no-oop": PhpSafeOptions(oop=False),
    "no-uncalled": PhpSafeOptions(analyze_uncalled=False),
    "no-wordpress": PhpSafeOptions(wordpress_config=False),
    "no-summaries": PhpSafeOptions(use_summaries=False),
}

_DETECTED = {}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_variant(benchmark, corpus_2014, variant):
    tool = PhpSafe(options=VARIANTS[variant])

    def run_all():
        match = MatchResult(tool=variant, version="2014")
        for plugin in corpus_2014.plugins:
            report = tool.analyze(plugin)
            accumulate_report(match, report, corpus_2014.truth, plugin.name)
        return match

    match = benchmark.pedantic(run_all, rounds=1, iterations=1)
    tp, fp = match.counts()
    _DETECTED[variant] = set(match.detected_ids)
    print(f"\nphpSAFE[{variant}]: TP={tp} FP={fp}")


def test_ablation_shape(corpus_2014):
    if "full" not in _DETECTED or len(_DETECTED) < 5:
        pytest.skip("ablation variants did not all run")
    full = _DETECTED["full"]
    oop_ids = {
        entry.spec.spec_id
        for entry in corpus_2014.truth.vulnerabilities()
        if entry.spec.via_oop
    }
    # removing OOP loses exactly the OOP population (and nothing else)
    assert full - _DETECTED["no-oop"] >= oop_ids
    # removing uncalled-function analysis loses the entry-point flows
    assert len(_DETECTED["no-uncalled"]) < len(full)
    # removing the WordPress profile loses the $wpdb-mediated flows
    # (DB-vector OOP + SQLi + WP sources) but keeps pure property flows
    # ($_COOKIE -> $this->prop -> echo needs only OOP resolution)
    wpdb_ids = {
        entry.spec.spec_id
        for entry in corpus_2014.truth.vulnerabilities()
        if entry.spec.via_oop and entry.spec.vector.value == "DB"
    }
    assert wpdb_ids & _DETECTED["no-wordpress"] == set()
    property_ids = oop_ids - wpdb_ids - {
        entry.spec.spec_id
        for entry in corpus_2014.truth.vulnerabilities()
        if entry.spec.region == "e_sqli"
    }
    assert property_ids <= _DETECTED["no-wordpress"]
    assert len(_DETECTED["no-wordpress"]) < len(_DETECTED["no-oop"])
    # summaries are a pure optimization: same detections
    assert _DETECTED["no-summaries"] == full
    print("\nablation deltas (lost TPs vs full):")
    for variant, detected in sorted(_DETECTED.items()):
        print(f"  {variant:14s} -{len(full - detected):4d}")

"""Benchmark fixtures.

The corpus scale is configurable: ``REPRO_BENCH_SCALE=1.0`` runs the
paper-sized corpora (89,560 / 180,801 LOC); the default keeps CI fast.
Tool evaluations are shared session-wide; benches that measure *timing*
(Table III) re-run the tools inside the benchmark loop instead.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.core import PhpSafe
from repro.corpus import build_corpus
from repro.evaluation import evaluate_both

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def make_tools():
    return [PhpSafe(), RipsLike(), PixyLike()]


@pytest.fixture(scope="session")
def corpus_2012():
    return build_corpus("2012", scale=SCALE)


@pytest.fixture(scope="session")
def corpus_2014():
    return build_corpus("2014", scale=SCALE)


@pytest.fixture(scope="session")
def evaluations(corpus_2012, corpus_2014):
    return evaluate_both([corpus_2012, corpus_2014], make_tools)

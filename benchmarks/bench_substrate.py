"""Throughput benchmarks of the PHP substrate (lexer / parser / engine).

Not a paper table — these isolate the layers under the Table III
numbers so regressions are attributable: tokens/s of the lexer,
statements/s of the parser, and findings/s of the end-to-end analyzer
on a representative plugin.
"""

from repro.core import PhpSafe
from repro.php import parse_source, print_file, tokenize_significant

# a representative plugin file: OOP + interpolation + control flow,
# repeated with unique names to reach ~900 lines
_UNIT = (
    "class Gallery_N {{\n"
    "    public $items = array();\n"
    "    public function load($limit) {{\n"
    "        global $wpdb;\n"
    "        $rows = $wpdb->get_results(\"SELECT * FROM {{$wpdb->prefix}}gallery\");\n"
    "        foreach ($rows as $row) {{\n"
    "            $this->items[] = $row;\n"
    "        }}\n"
    "    }}\n"
    "    public function render() {{\n"
    "        foreach ($this->items as $item) {{\n"
    "            echo '<li>' . esc_html($item->title) . '</li>';\n"
    "        }}\n"
    "    }}\n"
    "}}\n"
    "function gallery_shortcode_{index}($atts) {{\n"
    "    $args = shortcode_atts(array('n' => 10), $atts);\n"
    "    $g = new Gallery_{index}();\n"
    "    $g->load(intval($args['n']));\n"
    "    $g->render();\n"
    "}}\n"
)
SAMPLE = "<?php\n" + "".join(
    _UNIT.replace("Gallery_N", "Gallery_{index}").format(index=i) for i in range(40)
)


def test_lexer_throughput(benchmark):
    tokens = benchmark(lambda: tokenize_significant(SAMPLE))
    assert len(tokens) > 5000


def test_parser_throughput(benchmark):
    tree = benchmark(lambda: parse_source(SAMPLE))
    assert len(tree.statements) >= 80


def test_printer_throughput(benchmark):
    tree = parse_source(SAMPLE)
    out = benchmark(lambda: print_file(tree))
    assert out.startswith("<?php")


def test_analyzer_throughput(benchmark):
    tool = PhpSafe()
    report = benchmark(lambda: tool.analyze_source(SAMPLE))
    assert not report.failures

"""Benchmark + reproduction of Table I (per-tool TP/FP/P/R/F).

One benchmark per tool × corpus version: the measured operation is the
full analysis of all 35 plugins; the shape checks assert the Table I
cells the paper reports (reproduction values are exact by calibration;
see EXPERIMENTS.md for the paper's internal ±few inconsistencies).
"""

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe
from repro.evaluation import render_table1

TOOLS = {"phpSAFE": PhpSafe, "RIPS": RipsLike, "Pixy": PixyLike}

EXPECTED = {
    ("2012", "phpSAFE"): (307, 63, 8, 2),
    ("2012", "RIPS"): (134, 79, 0, 0),
    ("2012", "Pixy"): (50, 185, 0, 0),
    ("2014", "phpSAFE"): (378, 57, 9, 5),
    ("2014", "RIPS"): (304, 47, 0, 1),
    ("2014", "Pixy"): (20, 197, 0, 0),
}


@pytest.mark.parametrize("version", ["2012", "2014"])
@pytest.mark.parametrize("tool_name", list(TOOLS))
def test_table1_tool_analysis(
    benchmark, corpus_2012, corpus_2014, evaluations, version, tool_name
):
    corpus = corpus_2012 if version == "2012" else corpus_2014
    tool = TOOLS[tool_name]()

    def run_all():
        return [tool.analyze(plugin) for plugin in corpus.plugins]

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    evaluation = evaluations[version]
    xss = evaluation.confusion(tool_name, VulnKind.XSS)
    sqli = evaluation.confusion(tool_name, VulnKind.SQLI)
    assert (xss.tp, xss.fp, sqli.tp, sqli.fp) == EXPECTED[(version, tool_name)]


def test_print_table1(evaluations):
    """Emit the rendered table so the bench log shows paper-vs-measured."""
    print()
    print(render_table1(evaluations))
    print(
        "paper Table I: phpSAFE 307/374 XSS TP, RIPS 134/288(304 global), "
        "Pixy 50/20 — see EXPERIMENTS.md for cell-level notes"
    )

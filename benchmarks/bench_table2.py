"""Benchmark + reproduction of Table II (malicious input-vector type).

The measured operation is the root-cause classification itself (tracing
every confirmed vulnerability back to its entry vector); the shape
checks assert the Table II rows.
"""

from repro.evaluation import (
    both_versions_breakdown,
    render_table2,
    tier_shares,
    vector_breakdown,
)

EXPECTED = {
    "2012": {"POST": 22, "GET": 96, "POST/GET/COOKIE": 24, "DB": 211,
             "File/Function/Array": 41},
    # paper's 2014 rows sum to 585 for a 586 union; ours add the missing
    # flow to GET (112 vs 111)
    "2014": {"POST": 43, "GET": 112, "POST/GET/COOKIE": 57, "DB": 363,
             "File/Function/Array": 11},
    "both": {"POST": 11, "GET": 36, "POST/GET/COOKIE": 19, "DB": 162,
             "File/Function/Array": 4},
}


def test_table2_vector_classification(benchmark, evaluations):
    older = evaluations["2012"]
    newer = evaluations["2014"]

    def classify():
        return (
            vector_breakdown(older),
            vector_breakdown(newer),
            both_versions_breakdown(older, newer),
        )

    breakdown_old, breakdown_new, breakdown_both = benchmark(classify)

    assert breakdown_old.rows == EXPECTED["2012"]
    assert breakdown_new.rows == EXPECTED["2014"]
    assert breakdown_both.rows == EXPECTED["both"]

    # Section V.C exploitability tiers: ~36% direct, ~62% DB, ~2% other
    shares = tier_shares(breakdown_new)
    assert 0.30 <= shares[1] <= 0.42
    assert 0.55 <= shares[2] <= 0.68
    assert shares[3] <= 0.05

    print()
    print(render_table2(breakdown_old, breakdown_new, breakdown_both))

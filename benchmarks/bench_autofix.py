"""Corpus-scale auto-remediation benchmark (ours).

The capstone what-if experiment: apply the verified sanitizer-insertion
fixes to every phpSAFE finding across the whole 2014 corpus, re-analyze
the patched corpus, and measure how much of the vulnerability
population the automated remediation eliminates.  This exercises the
parser, printer, rewriter and analyzer end-to-end on every plugin.
"""

from repro.core import PhpSafe
from repro.core.autofix import apply_fixes


def test_autofix_whole_corpus(benchmark, corpus_2014):
    tool = PhpSafe()
    original_reports = {
        plugin.name: tool.analyze(plugin) for plugin in corpus_2014.plugins
    }
    total_before = sum(len(r.findings) for r in original_reports.values())
    assert total_before > 400

    def fix_everything():
        patched_plugins = []
        for plugin in corpus_2014.plugins:
            report = original_reports[plugin.name]
            patched, _proposals = apply_fixes(plugin, report.findings)
            patched_plugins.append(patched)
        return patched_plugins

    patched_plugins = benchmark.pedantic(fix_everything, rounds=1, iterations=1)

    total_after = 0
    for patched in patched_plugins:
        total_after += len(tool.analyze(patched).findings)

    eliminated = total_before - total_after
    print(
        f"\nauto-fix across 35 plugins: {total_before} findings -> "
        f"{total_after} ({eliminated} eliminated, "
        f"{eliminated / total_before * 100:.0f}%)"
    )
    # the rewriter must clear the overwhelming majority of sinks; the
    # remainder are sinks in files the printer/parser normalizes in ways
    # the single-pass rewriter does not cover (tracked, not hidden)
    assert eliminated >= 0.9 * total_before

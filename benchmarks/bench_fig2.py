"""Benchmark + reproduction of Fig. 2 (detection-overlap Venn diagram).

Measured operation: partitioning the union of confirmed detections into
exclusive per-tool-combination regions.  Shape checks: the union totals
(394 / 586 distinct vulnerabilities, +~50% growth) and the qualitative
region structure the paper draws.
"""

from repro.evaluation import compute_overlap, growth_percent, render_fig2


def test_fig2_overlap_regions(benchmark, evaluations):
    older_eval = evaluations["2012"]
    newer_eval = evaluations["2014"]

    def compute():
        return compute_overlap(older_eval), compute_overlap(newer_eval)

    older, newer = benchmark(compute)

    # headline numbers (Section V.B)
    assert older.union_total == 394
    assert newer.union_total == 586
    assert 45 <= growth_percent(older, newer) <= 55  # paper: +51%

    for analysis in (older, newer):
        # every tool has an exclusive region ("no silver bullet")
        for tool in ("phpSAFE", "RIPS", "Pixy"):
            assert analysis.region(tool) > 0
        # some vulnerabilities are found by all three
        assert analysis.shared_by_all() > 0
        # phpSAFE's exclusive region is the largest (its OOP advantage)
        assert analysis.region("phpSAFE") == max(
            analysis.region(tool) for tool in ("phpSAFE", "RIPS", "Pixy")
        )
        # per-tool totals equal the Table I Global TP rows
        assert sum(region.count for region in analysis.regions) == (
            analysis.union_total
        )

    print()
    print(render_fig2(older, newer))

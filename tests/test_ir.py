"""Tests for the lowered taint IR: evaluator parity with the AST
interpreter, pickle-safe round-trips through the disk cache (including
corrupt-entry quarantine), hash-seed-independent lowering, and the
process-wide L1 artifact cache the IR tier ships with."""

import hashlib
import os
import pickle
import subprocess
import sys

from repro.batch import DiskModelCache
from repro.core import ModelCache, PhpSafe
from repro.core.ir import IR_VERSION, IRProgram, describe_program
from repro.core.phpsafe import PhpSafeOptions, process_cache
from repro.core.results import finding_signatures
from repro.plugin import Plugin

# one source exercising the constructs whose lowering is subtle:
# interpolation, reference groups, ``global``/``static`` write-through,
# null coalescing, sanitizers, OOP property flow
SOURCE = """<?php
function render($x) { echo "<b>$x</b>"; }
$a = $_GET['q'];
$b =& $a;
echo $b;
echo htmlentities($_GET['w']);
$c = $_POST['p'] ?? 'default';
mysql_query("SELECT * FROM t WHERE x = $c");
render($_GET['r']);
class Box {
    public $v;
    function set($x) { $this->v = $x; }
    function show() { echo $this->v; }
}
$box = new Box();
$box->set($_GET['z']);
$box->show();
function accumulate() {
    static $s = '';
    $s = $s . $_GET['acc'];
    echo $s;
}
accumulate();
accumulate();
"""


def _plugin(name: str = "irp") -> Plugin:
    return Plugin(name=name, files={"a.php": SOURCE})


def _signatures(tool: PhpSafe) -> frozenset:
    return frozenset(finding_signatures([tool.analyze(_plugin())]))


def _ir_programs(cache: ModelCache):
    return [
        slot[0]
        for key, slot in sorted(cache._slots.items())
        if key.startswith("ir1!")
    ]


class TestIRParity:
    def test_ir_matches_ast_findings(self):
        ir_side = _signatures(PhpSafe(cache=ModelCache()))
        ast_side = _signatures(
            PhpSafe(options=PhpSafeOptions(use_ir=False), cache=ModelCache())
        )
        assert ir_side and ir_side == ast_side

    def test_evaluator_choice_changes_fingerprint(self):
        """Cached summaries/IR must never mix evaluators."""
        ir_tool = PhpSafe(cache=ModelCache())
        ast_tool = PhpSafe(
            options=PhpSafeOptions(use_ir=False), cache=ModelCache()
        )
        assert ir_tool._summary_fingerprint(
            ir_tool.options.engine
        ) != ast_tool._summary_fingerprint(ast_tool.options.engine)


class TestIRDiskCache:
    def test_ir_survives_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = PhpSafe(cache_dir=cache_dir)
        cold = _signatures(first)
        assert first.cache.ir_stats.stores >= 1

        # a fresh tool over the same directory starts with an empty
        # memory tier, so the lowered programs must come back off disk
        second = PhpSafe(cache_dir=cache_dir)
        warm = _signatures(second)
        assert warm == cold
        assert second.cache.ir_stats.disk_hits >= 1
        assert second.cache.ir_stats.hits >= 1

    def test_ir_program_pickle_roundtrip(self):
        cache = ModelCache()
        PhpSafe(cache=cache).analyze(_plugin())
        programs = _ir_programs(cache)
        assert programs, "analysis stored no lowered IR"
        for program in programs:
            clone = pickle.loads(
                pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
            )
            assert isinstance(clone, IRProgram)
            assert clone.version == IR_VERSION
            assert describe_program(clone) == describe_program(program)

    def test_corrupt_ir_entry_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = PhpSafe(cache_dir=cache_dir)
        expected = _signatures(first)

        ir_keys = [
            key for key in first.cache._slots if key.startswith("ir1!")
        ]
        assert ir_keys
        for key in ir_keys:
            path = first.cache._object_path(key)
            with open(path, "wb") as handle:
                handle.write(b"\x80\x04 this is not a pickle")

        second = PhpSafe(cache_dir=cache_dir)
        assert _signatures(second) == expected
        assert second.cache.stats.corrupt >= len(ir_keys)
        # the quarantine unlinked the rotten objects and the re-analysis
        # rewrote clean ones: a third tool reads them back fine
        third = PhpSafe(cache_dir=cache_dir)
        assert _signatures(third) == expected
        assert third.cache.stats.corrupt == 0
        assert third.cache.ir_stats.disk_hits >= 1


class TestIRLoweringDeterminism:
    def test_lowering_is_hash_seed_independent(self):
        """Two lowerings of the same source under different
        ``PYTHONHASHSEED`` values must describe identically — cached IR
        is shared across processes through the disk tier."""
        code = (
            "import hashlib\n"
            "from repro.core import ModelCache, PhpSafe\n"
            "from repro.core.ir import describe_program\n"
            "from repro.plugin import Plugin\n"
            f"source = {SOURCE!r}\n"
            "cache = ModelCache()\n"
            "tool = PhpSafe(cache=cache)\n"
            "tool.analyze(Plugin(name='d', files={'a.php': source}))\n"
            "programs = [slot[0] for key, slot in sorted(cache._slots.items())"
            " if key.startswith('ir1!')]\n"
            "assert programs\n"
            "text = '\\n'.join(describe_program(p) for p in programs)\n"
            "print(hashlib.sha256(text.encode('utf-8')).hexdigest())\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        runs = set()
        for seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            runs.add(out.stdout.strip())
        assert len(runs) == 1, runs


class TestProcessCache:
    def test_default_tools_share_the_process_cache(self):
        shared = process_cache()
        assert PhpSafe().cache is shared
        assert PhpSafe().cache is shared

    def test_explicit_cache_wins(self):
        cache = ModelCache()
        assert PhpSafe(cache=cache).cache is cache

    def test_opt_out_disables_caching(self):
        assert PhpSafe(use_process_cache=False).cache is None

    def test_opt_out_parity(self):
        cached = _signatures(PhpSafe())
        uncached = _signatures(PhpSafe(use_process_cache=False))
        assert cached == uncached

    def test_second_tool_hits_shared_artifacts(self):
        # a unique source so other tests can't have warmed these slots
        source = SOURCE + "\n<?php echo $_GET['process_cache_probe'];\n"
        plugin = Plugin(name="pc", files={"probe.php": source})
        shared = process_cache()
        PhpSafe().analyze(plugin)
        hits_before = shared.stats.hits
        ir_hits_before = shared.ir_stats.hits
        PhpSafe().analyze(plugin)
        assert shared.stats.hits > hits_before
        assert shared.ir_stats.hits > ir_hits_before

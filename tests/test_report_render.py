"""String-level tests for the table/figure renderers."""

from repro.evaluation import (
    analyze_inertia,
    both_versions_breakdown,
    compute_overlap,
    render_fig2,
    render_inertia,
    render_robustness,
    render_table1,
    render_table2,
    render_table3,
    vector_breakdown,
)


class TestTable1Rendering:
    def test_contains_all_tools_and_versions(self, evaluations):
        text = render_table1(evaluations)
        for token in ("phpSAFE 2012", "RIPS 2014", "Pixy 2012"):
            assert token in text

    def test_sections_present(self, evaluations):
        text = render_table1(evaluations)
        for section in ("XSS", "SQLi", "Global"):
            assert section in text

    def test_key_cells_present(self, evaluations):
        text = render_table1(evaluations)
        # phpSAFE 2012 XSS TP and Pixy 2014 FP, as rendered numbers
        assert "307" in text
        assert "197" in text

    def test_dash_for_undefined_precision(self, evaluations):
        # Pixy reported zero SQLi findings: precision renders as '-'
        text = render_table1(evaluations)
        assert "-" in text

    def test_exact_convention_variant(self, evaluations):
        text = render_table1(evaluations, convention="exact")
        assert "exact" in text


class TestOtherRenderers:
    def test_table2_rows_and_paper_columns(self, evaluations):
        text = render_table2(
            vector_breakdown(evaluations["2012"]),
            vector_breakdown(evaluations["2014"]),
            both_versions_breakdown(evaluations["2012"], evaluations["2014"]),
        )
        assert "POST/GET/COOKIE" in text
        assert "paper12" in text
        assert "211" in text  # DB 2012

    def test_table3_has_paper_reference(self, evaluations):
        text = render_table3(evaluations)
        assert "17.87" in text and "180.91" in text
        assert "s/KLOC" in text

    def test_fig2_regions_and_growth(self, evaluations):
        text = render_fig2(
            compute_overlap(evaluations["2012"]),
            compute_overlap(evaluations["2014"]),
        )
        assert "union=394" in text and "union=586" in text
        assert "growth" in text

    def test_inertia_text(self, evaluations):
        text = render_inertia(analyze_inertia(evaluations["2012"], evaluations["2014"]))
        assert "232 of 586" in text

    def test_robustness_lists_failures(self, evaluations):
        text = render_robustness(evaluations)
        assert "failed files=31" in text
        assert "errors=37" in text


class TestMarkdownReport:
    def test_full_markdown_document(self, evaluations):
        from repro.evaluation.report import render_markdown

        document = render_markdown(
            evaluations,
            compute_overlap(evaluations["2012"]),
            compute_overlap(evaluations["2014"]),
            {
                "2012": vector_breakdown(evaluations["2012"]),
                "2014": vector_breakdown(evaluations["2014"]),
                "both": both_versions_breakdown(
                    evaluations["2012"], evaluations["2014"]
                ),
            },
            analyze_inertia(evaluations["2012"], evaluations["2014"]),
        )
        assert document.startswith("# phpSAFE reproduction")
        for heading in ("Table I", "Fig. 2", "Table II", "fix inertia",
                        "Table III", "robustness"):
            assert heading in document
        assert "| phpSAFE | 2012 | 307 | 63 | 8 | 2 |" in document
        assert "**2014**: 586 distinct" in document

"""Batch scanning subsystem: scheduler, isolation, telemetry, disk cache."""

import json
import os
import time

import pytest

from repro.batch import (
    BatchOptions,
    BatchScanner,
    ToolSpec,
    scan_corpus,
)
from repro.batch.telemetry import SCHEMA
from repro.core import PhpSafe
from repro.core.results import ToolReport
from repro.core.tool import AnalyzerTool
from repro.corpus import build_corpus
from repro.plugin import Plugin


def small_plugins():
    return [
        Plugin(name="alpha", files={"index.php": "<?php echo $_GET['a'];"}),
        Plugin(
            name="beta",
            files={
                "index.php": "<?php echo $_GET['b'];",
                "lib.php": "<?php $x = 1;",
            },
        ),
        Plugin(
            name="gamma", files={"index.php": "<?php echo esc_html($_GET['c']);"}
        ),
    ]


def finding_keys(reports):
    return sorted((report.plugin, f.key) for report in reports for f in report.findings)


class CrashingTool(AnalyzerTool):
    """Dies hard (process exit, not an exception) on one plugin."""

    name = "crasher"

    def analyze(self, plugin: Plugin) -> ToolReport:
        if plugin.name == "beta":
            os._exit(13)
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        report.files_analyzed = plugin.file_count
        return report


class SleepyTool(AnalyzerTool):
    """Exceeds any reasonable deadline on one plugin."""

    name = "sleepy"

    def analyze(self, plugin: Plugin) -> ToolReport:
        if plugin.name == "beta":
            time.sleep(30)
        return ToolReport(tool=self.name, plugin=plugin.slug)


class TestParallelEqualsSerial:
    def test_small_batch(self):
        plugins = small_plugins()
        serial = [PhpSafe().analyze(plugin) for plugin in plugins]
        result = scan_corpus(plugins, jobs=2)
        assert finding_keys(result.reports) == finding_keys(serial)
        assert [report.plugin for report in result.reports] == [
            plugin.slug for plugin in plugins
        ]

    def test_corpus_smoke(self, corpus_2012):
        """Tier-1 smoke: the parallel path returns findings identical to
        the serial path over (a slice of) the generated corpus."""
        plugins = corpus_2012.plugins[:6]
        serial = [PhpSafe().analyze(plugin) for plugin in plugins]
        result = scan_corpus(plugins, jobs=2)
        assert finding_keys(result.reports) == finding_keys(serial)

    def test_jobs1_runs_same_pipeline(self):
        plugins = small_plugins()
        serial = scan_corpus(plugins, jobs=1)
        parallel = scan_corpus(plugins, jobs=2)
        assert finding_keys(serial.reports) == finding_keys(parallel.reports)
        assert serial.telemetry.jobs == 1


class TestCrashIsolation:
    def test_dead_worker_becomes_file_failure(self):
        spec = ToolSpec(name="tests.test_batch:CrashingTool")
        result = scan_corpus(small_plugins(), jobs=2, spec=spec)
        by_plugin = {report.plugin: report for report in result.reports}
        crashed = by_plugin["beta"]
        assert crashed.failures, "crash must surface as a robustness incident"
        failure = crashed.failures[0]
        assert failure.file == "<plugin>"
        assert not failure.completed
        # the batch itself survived: the other plugins completed
        assert by_plugin["alpha"].files_analyzed == 1
        assert by_plugin["gamma"].files_analyzed == 1
        assert result.telemetry.worker_restarts >= 1
        assert result.telemetry.crashes == 1

    def test_worker_exception_is_isolated_without_restart(self):
        spec = ToolSpec(name="tests.test_batch:RaisingTool")
        result = scan_corpus(small_plugins(), jobs=2, spec=spec)
        by_plugin = {report.plugin: report for report in result.reports}
        assert "worker exception" in by_plugin["beta"].failures[0].reason
        assert result.telemetry.worker_restarts == 0
        assert result.telemetry.crashes == 1


class RaisingTool(AnalyzerTool):
    name = "raiser"

    def analyze(self, plugin: Plugin) -> ToolReport:
        if plugin.name == "beta":
            raise RuntimeError("boom")
        return ToolReport(tool=self.name, plugin=plugin.slug)


class TestDeadline:
    def test_timeout_becomes_file_failure(self):
        spec = ToolSpec(name="tests.test_batch:SleepyTool")
        result = scan_corpus(small_plugins(), jobs=2, timeout=0.3, spec=spec)
        by_plugin = {report.plugin: report for report in result.reports}
        failure = by_plugin["beta"].failures[0]
        assert failure.file == "<plugin>"
        assert not failure.completed
        assert "deadline" in failure.reason
        assert result.telemetry.timeouts == 1
        assert not by_plugin["alpha"].failures


class TestPersistentCache:
    def test_warm_rerun_hit_rate(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugins = small_plugins()
        cold = scan_corpus(plugins, jobs=2, cache_dir=cache_dir)
        warm = scan_corpus(plugins, jobs=2, cache_dir=cache_dir)
        assert warm.telemetry.cache_hit_rate > 0.9
        assert warm.telemetry.cache_hits >= 4
        assert finding_keys(cold.reports) == finding_keys(warm.reports)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugins = small_plugins()
        scan_corpus(plugins, jobs=1, cache_dir=cache_dir)
        warm = scan_corpus(plugins, jobs=2, cache_dir=cache_dir)
        assert warm.telemetry.cache_hit_rate > 0.9


class TestTelemetry:
    def test_schema_and_write(self, tmp_path):
        plugins = small_plugins()
        result = scan_corpus(plugins, jobs=1)
        payload = result.telemetry.to_dict()
        assert payload["schema"] == SCHEMA
        for key in ("jobs", "wall_seconds", "files_per_second", "cache",
                    "incidents", "plugins"):
            assert key in payload
        assert len(payload["plugins"]) == len(plugins)
        assert payload["plugins"][0]["outcome"] == "ok"
        out = tmp_path / "telemetry.json"
        result.telemetry.write(str(out))
        assert json.loads(out.read_text())["schema"] == SCHEMA

    def test_wall_time_and_throughput(self):
        result = scan_corpus(small_plugins(), jobs=1)
        assert result.telemetry.wall_seconds > 0
        assert result.telemetry.total_files == 4
        assert result.telemetry.files_per_second > 0


class TestToolSpec:
    def test_from_tool_roundtrip(self):
        tool = PhpSafe()
        spec = ToolSpec.from_tool(tool)
        assert spec is not None
        rebuilt = spec.build()
        assert rebuilt.profile.name == tool.profile.name
        assert rebuilt.options == tool.options

    def test_from_tool_rejects_custom_profile(self):
        from repro.config import generic_php

        tool = PhpSafe(profile=generic_php("custom-cms"))
        assert ToolSpec.from_tool(tool) is None

    def test_baseline_specs(self):
        from repro.baselines import PixyLike, RipsLike

        assert ToolSpec.from_tool(RipsLike()).name == "rips"
        assert ToolSpec.from_tool(PixyLike()).name == "pixy"

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            ToolSpec(name="nonesuch").build()


class TestMergedReport:
    def test_merged_report_keeps_cross_plugin_findings(self):
        plugins = [
            Plugin(name="one", files={"index.php": "<?php echo $_GET['x'];"}),
            Plugin(name="two", files={"index.php": "<?php echo $_GET['y'];"}),
        ]
        result = scan_corpus(plugins, jobs=1)
        merged = result.merged_report()
        # both plugins flag index.php:1 — provenance keeps them distinct
        assert len(merged.findings) == 2
        assert {finding.plugin for finding in merged.findings} == {"one", "two"}

    def test_empty_batch(self):
        result = BatchScanner(options=BatchOptions(jobs=1)).scan([])
        assert result.reports == []
        assert result.merged_report() is None

"""Shared fixtures.

The full-corpus evaluation is expensive, so it runs once per session at
a reduced noise scale (seeded vulnerability counts are scale-invariant)
and is shared by the integration and evaluation tests.
"""

from __future__ import annotations

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.core import PhpSafe
from repro.corpus import build_corpus
from repro.evaluation import evaluate_both




@pytest.fixture(scope="session")
def corpus_2012():
    return build_corpus("2012", scale=0.05)


@pytest.fixture(scope="session")
def corpus_2014():
    return build_corpus("2014", scale=0.05)


@pytest.fixture(scope="session")
def evaluations(corpus_2012, corpus_2014):
    """All three tools over both corpus versions (shared, read-only)."""
    return evaluate_both(
        [corpus_2012, corpus_2014],
        lambda: [PhpSafe(), RipsLike(), PixyLike()],
    )

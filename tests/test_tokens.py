"""Unit tests for the token taxonomy."""

from repro.php.tokens import CASTS, KEYWORDS, OPERATORS, TRIVIA, Token, TokenType


class TestToken:
    def test_repr_matches_paper_triple(self):
        token = Token(TokenType.VARIABLE, "$_POST", 11)
        assert repr(token) == "[T_VARIABLE, '$_POST', 11]"

    def test_name_is_php_identifier(self):
        assert Token(TokenType.GLOBAL, "global", 1).name == "T_GLOBAL"
        assert Token(TokenType.OBJECT_OPERATOR, "->", 2).name == "T_OBJECT_OPERATOR"

    def test_is_char(self):
        semi = Token(TokenType.CHAR, ";", 1)
        assert semi.is_char(";")
        assert not semi.is_char("{")
        assert not Token(TokenType.VARIABLE, ";", 1).is_char(";")

    def test_tokens_are_immutable(self):
        token = Token(TokenType.STRING, "foo", 1)
        try:
            token.value = "bar"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Token should be frozen")


class TestKeywordTable:
    def test_paper_dispatch_keywords_present(self):
        # every construct Section III.C dispatches on has a keyword
        for keyword in (
            "global", "return", "if", "else", "elseif", "switch",
            "for", "while", "do", "foreach", "unset", "echo",
        ):
            assert keyword in KEYWORDS

    def test_oop_keywords_present(self):
        for keyword in ("class", "new", "extends", "public", "private", "static"):
            assert keyword in KEYWORDS

    def test_die_aliases_exit(self):
        assert KEYWORDS["die"] is TokenType.EXIT
        assert KEYWORDS["exit"] is TokenType.EXIT

    def test_keywords_lowercase(self):
        assert all(keyword == keyword.lower() for keyword in KEYWORDS)


class TestOperatorTable:
    def test_longest_first_scanning_order(self):
        lengths = [len(spelling) for spelling, _type in OPERATORS]
        assert lengths == sorted(lengths, reverse=True)

    def test_object_and_scope_operators(self):
        table = dict(OPERATORS)
        assert table["->"] is TokenType.OBJECT_OPERATOR
        assert table["::"] is TokenType.DOUBLE_COLON
        assert table["=>"] is TokenType.DOUBLE_ARROW

    def test_no_duplicate_spellings(self):
        spellings = [spelling for spelling, _type in OPERATORS]
        assert len(spellings) == len(set(spellings))


class TestCastTable:
    def test_aliases(self):
        assert CASTS["int"] is CASTS["integer"]
        assert CASTS["bool"] is CASTS["boolean"]
        assert CASTS["float"] is CASTS["double"] is CASTS["real"]


class TestTrivia:
    def test_trivia_covers_comments_and_whitespace(self):
        assert TokenType.WHITESPACE in TRIVIA
        assert TokenType.COMMENT in TRIVIA
        assert TokenType.DOC_COMMENT in TRIVIA
        assert TokenType.VARIABLE not in TRIVIA

"""Tests for the AST visitor/transformer framework."""

from repro.php import parse_source, print_file
from repro.php import ast_nodes as ast
from repro.php.visitor import (
    CallGraphCollector,
    FunctionCollector,
    NodeTransformer,
    NodeVisitor,
    iter_child_nodes,
)

SOURCE = """<?php
function top() { helper(1); }
function helper($n) { echo $n; }
class W {
    public function render() { helper(2); }
}
top();
"""


class TestVisitor:
    def test_iter_child_nodes(self):
        tree = parse_source("<?php if ($a) { echo 1; }")
        statement = tree.statements[0]
        children = list(iter_child_nodes(statement))
        assert any(isinstance(c, ast.Variable) for c in children)
        assert any(isinstance(c, ast.EchoStatement) for c in children)

    def test_dispatch_by_type_name(self):
        class Counter(NodeVisitor):
            echos = 0
            variables = 0

            def visit_EchoStatement(self, node):
                self.echos += 1
                self.generic_visit(node)

            def visit_Variable(self, node):
                self.variables += 1

        counter = Counter()
        counter.visit(parse_source("<?php echo $a; echo $b . $c;"))
        assert counter.echos == 2
        assert counter.variables == 3

    def test_function_collector(self):
        collector = FunctionCollector()
        collector.visit(parse_source(SOURCE))
        names = {(name, cls) for name, _line, cls in collector.functions}
        assert names == {("top", None), ("helper", None), ("render", "W")}

    def test_call_graph_collector(self):
        collector = CallGraphCollector()
        collector.visit(parse_source(SOURCE))
        assert ("top", "helper") in collector.edges
        assert ("<main>", "top") in collector.edges


class TestTransformer:
    def test_replace_nodes(self):
        class LiteralUpper(NodeTransformer):
            def visit_Literal(self, node):
                if isinstance(node.value, str):
                    node.value = node.value.upper()
                return node

        tree = parse_source("<?php echo 'hello';")
        LiteralUpper().visit(tree)
        assert "HELLO" in print_file(tree)

    def test_remove_statements(self):
        class DropEchos(NodeTransformer):
            def visit_EchoStatement(self, node):
                return None

        tree = parse_source("<?php $a = 1; echo $a; $b = 2;")
        DropEchos().visit(tree)
        assert len(tree.statements) == 2
        assert "echo" not in print_file(tree)

    def test_wrap_expressions(self):
        class EscapeEchoArgs(NodeTransformer):
            def visit_EchoStatement(self, node):
                node.exprs = [
                    ast.FunctionCall(line=e.line, name="esc_html", args=[e])
                    for e in node.exprs
                ]
                return node

        tree = parse_source("<?php echo $_GET['x'];")
        EscapeEchoArgs().visit(tree)
        from repro.core import PhpSafe

        assert not PhpSafe().analyze_source(print_file(tree)).findings

"""Unit tests for the model-construction stage (Section III.B)."""

from repro.core.model import PluginModel
from repro.plugin import Plugin


def build(files, budget=400_000):
    return PluginModel.build(Plugin(name="p", files=files), include_budget=budget)


class TestFunctionTable:
    def test_functions_collected(self):
        model = build({"a.php": "<?php function foo() {} function Bar($x) {}"})
        assert set(model.functions) == {"foo", "bar"}
        assert model.lookup_function("FOO") is not None
        assert model.functions["bar"].params[0].name == "x"

    def test_methods_collected_with_qualified_keys(self):
        model = build(
            {"a.php": "<?php class W { public function go() {} }"}
        )
        assert "w::go" in model.functions
        assert model.functions["w::go"].is_method

    def test_abstract_methods_skipped(self):
        model = build(
            {"a.php": "<?php abstract class A { abstract public function f(); }"}
        )
        assert "a::f" not in model.functions

    def test_nested_function_in_branch_collected(self):
        model = build({"a.php": "<?php if ($x) { function late() {} }"})
        assert "late" in model.functions


class TestClassTable:
    def test_class_with_parent(self):
        model = build(
            {"a.php": "<?php class Base {} class Child extends Base {}"}
        )
        assert model.lookup_class("child").parent == "Base"

    def test_resolve_method_walks_inheritance(self):
        model = build(
            {
                "a.php": (
                    "<?php class Base { public function show() {} }"
                    "class Child extends Base {}"
                )
            }
        )
        info = model.resolve_method("Child", "show")
        assert info is not None and info.class_name == "Base"

    def test_resolve_method_through_trait(self):
        model = build(
            {
                "a.php": (
                    "<?php trait T { public function t() {} }"
                    "class C { use T; }"
                )
            }
        )
        assert model.resolve_method("C", "t") is not None

    def test_resolve_missing_method(self):
        model = build({"a.php": "<?php class C {}"})
        assert model.resolve_method("C", "nope") is None

    def test_inheritance_cycle_terminates(self):
        model = build(
            {"a.php": "<?php class A extends B {} class B extends A {}"}
        )
        assert model.resolve_method("A", "x") is None


class TestCalledAndUncalled:
    def test_called_function_not_in_uncalled(self):
        model = build({"a.php": "<?php function used() {} used();"})
        assert [info.name for info in model.uncalled_functions()] == []

    def test_uncalled_function_listed(self):
        model = build({"a.php": "<?php function hook_cb() {}"})
        assert [info.name for info in model.uncalled_functions()] == ["hook_cb"]

    def test_uncalled_method_listed(self):
        model = build(
            {"a.php": "<?php class W { public function render() {} }"}
        )
        assert [info.name for info in model.uncalled_functions()] == ["render"]

    def test_called_method_by_name_anywhere(self):
        model = build(
            {
                "a.php": (
                    "<?php class W { public function render() {} }"
                    "$w->render();"
                )
            }
        )
        assert model.uncalled_functions() == []

    def test_cross_file_call_detected(self):
        model = build(
            {
                "a.php": "<?php function helper() {}",
                "b.php": "<?php helper();",
            }
        )
        assert model.uncalled_functions() == []


class TestIncludes:
    def test_literal_include_collected(self):
        model = build(
            {"a.php": "<?php include 'inc/x.php';", "inc/x.php": "<?php $a;"}
        )
        assert model.files["a.php"].includes == ["inc/x.php"]

    def test_dirname_idiom_resolved(self):
        model = build(
            {
                "admin/a.php": "<?php require_once(dirname(__FILE__) . '/../lib/b.php');",
                "lib/b.php": "<?php $x;",
            }
        )
        resolved = model.resolve_include(
            model.files["admin/a.php"].includes[0], "admin/a.php"
        )
        assert resolved == "lib/b.php"

    def test_basename_fallback(self):
        model = build(
            {"a.php": "<?php include 'unknown/prefix/tool.php';", "deep/tool.php": "<?php"}
        )
        assert model.resolve_include("unknown/prefix/tool.php", "a.php") == "deep/tool.php"

    def test_ambiguous_basename_not_resolved(self):
        model = build(
            {
                "a.php": "<?php",
                "x/t.php": "<?php",
                "y/t.php": "<?php",
            }
        )
        assert model.resolve_include("nowhere/t.php", "a.php") is None

    def test_dynamic_include_ignored(self):
        model = build({"a.php": "<?php include $path;"})
        assert model.files["a.php"].includes == []


class TestBudget:
    def test_oversized_closure_fails_file(self):
        lib = "<?php " + "$pad = 'x';\n" * 2000
        model = build(
            {
                "lib.php": lib,
                "panel.php": "<?php include 'lib.php';",
                "small.php": "<?php $ok = 1;",
            },
            budget=5_000,
        )
        # budget exhaustion is a model-stage incident, not a syntax error
        assert "panel.php" in model.budget_failures
        assert "lib.php" in model.budget_failures
        assert not model.parse_failures
        assert "small.php" in model.files
        assert model.skipped_loc["lib.php"] > 0
        assert any(
            incident.stage.value == "model" and incident.file == "panel.php"
            for incident in model.incidents
        )

    def test_budget_cycle_counts_once(self):
        files = {
            "a.php": "<?php include 'b.php'; " + "$x = 1;\n" * 50,
            "b.php": "<?php include 'a.php'; " + "$y = 2;\n" * 50,
        }
        model = build(files, budget=10_000)
        assert not model.parse_failures

    def test_parse_failures_recorded(self):
        model = build({"bad.php": "<?php $a = ;", "ok.php": "<?php $b = 1;"})
        assert "bad.php" in model.parse_failures
        assert "ok.php" in model.files

    def test_total_loc(self):
        model = build({"a.php": "<?php\n$a = 1;\n$b = 2;\n"})
        assert model.total_loc == 3

"""Behavioural tests for the RIPS-like and Pixy-like baselines.

Each test pins one capability difference the paper's comparison relies
on (Sections II, V.A, V.E).
"""

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe
from repro.plugin import Plugin

from tests.helpers import findings_of


def xss(source, tool):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


def sqli(source, tool):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.SQLI]


class TestRipsCapabilities:
    def test_finds_procedural_flows(self):
        assert xss("<?php echo $_GET['x'];", RipsLike())

    def test_finds_uncalled_function_flows(self):
        # Section V.A: RIPS shares the plugin-entry-point feature
        assert xss("<?php function hook() { echo $_POST['v']; }", RipsLike())

    def test_blind_to_wpdb_source(self):
        source = "<?php $r = $wpdb->get_var('Q'); echo $r;"
        assert not xss(source, RipsLike())
        assert xss(source, PhpSafe())

    def test_blind_to_wpdb_sink(self):
        source = "<?php $wpdb->query('D WHERE x=' . $_GET['i']);"
        assert not sqli(source, RipsLike())
        assert sqli(source, PhpSafe())

    def test_blind_to_property_flows(self):
        source = (
            "<?php class W { public $d;"
            "public function a() { $this->d = $_GET['x']; }"
            "public function b() { echo $this->d; } }"
        )
        assert not xss(source, RipsLike())
        assert xss(source, PhpSafe())

    def test_scans_method_bodies_procedurally(self):
        # superglobal flows inside methods ARE in RIPS's reach
        source = "<?php class W { public function p() { echo $_GET['x']; } }"
        assert xss(source, RipsLike())

    def test_false_positive_on_wordpress_sanitizer(self):
        source = "<?php echo esc_html($_GET['x']);"
        assert xss(source, RipsLike())  # RIPS FP
        assert not xss(source, PhpSafe())

    def test_false_positive_on_absint_query(self):
        source = "<?php mysql_query('L ' . absint($_GET['n']));"
        assert sqli(source, RipsLike())  # the 2014 RIPS SQLi FP
        assert not sqli(source, PhpSafe())

    def test_knows_generic_php_sanitizers(self):
        assert not xss("<?php echo htmlentities($_GET['x']);", RipsLike())

    def test_never_fails_files(self):
        big = "<?php include 'lib.php'; echo $_GET['x'];"
        lib = "<?php " + "$pad = 'y';\n" * 20_000
        plugin = Plugin(name="p", files={"a.php": big, "lib.php": lib})
        rips = RipsLike().analyze(plugin)
        phpsafe = PhpSafe().analyze(plugin)
        assert not rips.failed_files
        assert phpsafe.failed_files  # phpSAFE's budget trips
        # RIPS finds the flow phpSAFE missed (the paper's 2014 effect)
        assert rips.findings


class TestPixyCapabilities:
    def test_finds_main_flow(self):
        assert xss("<?php echo $_GET['x'];", PixyLike())

    def test_skips_uncalled_functions(self):
        # Section V.A: "Pixy is unable to do so"
        assert not xss("<?php function hook() { echo $_POST['v']; }", PixyLike())

    def test_skips_method_bodies(self):
        source = "<?php class W { public function p() { echo $_GET['x']; } }"
        assert not xss(source, PixyLike())

    def test_register_globals_source(self):
        found = xss("<?php echo $uninitialized_skin;", PixyLike())
        assert found
        assert not xss("<?php echo $uninitialized_skin;", PhpSafe())

    def test_initialized_variable_not_flagged(self):
        assert not xss("<?php $skin = 'blue'; echo $skin;", PixyLike())

    def test_fails_on_try_catch(self):
        plugin = Plugin(
            name="p",
            files={"compat.php": "<?php try { f(); } catch (Exception $e) {}"},
        )
        report = PixyLike().analyze(plugin)
        assert report.failed_files == ["compat.php"]
        assert report.error_count == 1

    def test_fails_on_closure_and_namespace(self):
        for body in ("$f = function () { return 1; };", "namespace X;"):
            plugin = Plugin(name="p", files={"f.php": f"<?php {body}"})
            assert PixyLike().analyze(plugin).failed_files

    def test_warns_on_final_but_completes(self):
        plugin = Plugin(
            name="p",
            files={"flags.php": "<?php final class F {}\necho $_GET['x'];"},
        )
        report = PixyLike().analyze(plugin)
        assert not report.failed_files  # completed
        assert report.error_count == 1  # but raised an error message
        assert report.findings  # and still analyzed the flow

    def test_failure_confines_to_file(self):
        plugin = Plugin(
            name="p",
            files={
                "bad.php": "<?php try { f(); } catch (E $e) {}",
                "good.php": "<?php echo $_GET['x'];",
            },
        )
        report = PixyLike().analyze(plugin)
        assert report.failed_files == ["bad.php"]
        assert report.findings

    def test_old_knowledge_base_misses_mysqli(self):
        # every input initialized so only the mysqli knowledge gap counts
        source = (
            "<?php $l = mysqli_connect('h'); $q = mysqli_query($l, 'S');"
            " $r = mysqli_fetch_assoc($q); echo $r['x'];"
        )
        assert not xss(source, PixyLike())
        assert xss(source, PhpSafe())


class TestToolInterface:
    def test_names(self):
        assert PhpSafe().name == "phpSAFE"
        assert RipsLike().name == "RIPS"
        assert PixyLike().name == "Pixy"

    def test_analyze_timed_sets_seconds(self):
        plugin = Plugin(name="p", files={"a.php": "<?php echo 1;"})
        report = RipsLike().analyze_timed(plugin)
        assert report.seconds > 0

    def test_reports_carry_loc_and_files(self):
        plugin = Plugin(name="p", files={"a.php": "<?php\n$a = 1;\n$b = 2;\n"})
        report = PixyLike().analyze(plugin)
        assert report.files_analyzed == 1
        assert report.loc_analyzed == 3

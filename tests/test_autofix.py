"""Tests for automatic remediation proposals."""

from repro.core import PhpSafe
from repro.core.autofix import apply_fixes, propose_fix, verify_fix
from repro.plugin import Plugin


def analyzed(files):
    plugin = Plugin(name="t", files=files)
    return plugin, PhpSafe().analyze(plugin).findings


class TestProposeFix:
    def test_xss_echo_wrapped_in_esc_html(self):
        plugin, findings = analyzed({"t.php": "<?php echo $_GET['m'];"})
        proposal = propose_fix(plugin, findings[0])
        assert proposal is not None and proposal.changed
        assert "esc_html($_GET['m'])" in proposal.patched_source
        assert "esc_html()" in proposal.description

    def test_sqli_query_wrapped_in_esc_sql(self):
        plugin, findings = analyzed(
            {"t.php": "<?php $wpdb->query('D WHERE i=' . $_GET['i']);"}
        )
        proposal = propose_fix(plugin, findings[0])
        assert proposal and "esc_sql(" in proposal.patched_source

    def test_cmdi_wrapped_in_escapeshellarg(self):
        plugin, findings = analyzed({"t.php": "<?php system('x ' . $_GET['a']);"})
        cmdi = [f for f in findings if f.kind.value == "cmdi"]
        proposal = propose_fix(plugin, cmdi[0])
        assert proposal and "escapeshellarg(" in proposal.patched_source

    def test_lfi_wrapped_in_basename(self):
        plugin, findings = analyzed({"t.php": "<?php include $_GET['p'];"})
        lfi = [f for f in findings if f.kind.value == "lfi"]
        proposal = propose_fix(plugin, lfi[0])
        assert proposal and "basename(" in proposal.patched_source

    def test_literals_not_wrapped(self):
        plugin, findings = analyzed(
            {"t.php": "<?php echo 'prefix', $_GET['m'];"}
        )
        proposal = propose_fix(plugin, findings[0])
        assert proposal is not None
        assert "esc_html('prefix')" not in proposal.patched_source

    def test_missing_file_returns_none(self):
        plugin, findings = analyzed({"t.php": "<?php echo $_GET['m'];"})
        finding = findings[0]
        other = Plugin(name="o", files={"other.php": "<?php"})
        assert propose_fix(other, finding) is None


class TestApplyAndVerify:
    def test_fixes_clear_all_findings(self):
        plugin, findings = analyzed(
            {
                "t.php": (
                    "<?php\n"
                    "echo '<p>' . $_GET['m'] . '</p>';\n"
                    "$wpdb->query(\"D WHERE id = '\" . $_GET['id'] . \"'\");\n"
                    "function hook() { system('zip ' . $_POST['f']); }\n"
                )
            }
        )
        assert len(findings) == 3
        patched, proposals = apply_fixes(plugin, findings)
        assert len(proposals) == 3
        assert all(verify_fix(patched, finding) for finding in findings)
        assert not PhpSafe().analyze(patched).findings

    def test_multiple_sinks_same_file_single_pass(self):
        plugin, findings = analyzed(
            {
                "t.php": (
                    "<?php\n"
                    "echo $_GET['a'];\n"
                    "echo $_GET['b'];\n"
                    "echo $_GET['c'];\n"
                )
            }
        )
        patched, proposals = apply_fixes(plugin, findings)
        assert len(proposals) == 3
        assert patched.files["t.php"].count("esc_html(") == 3

    def test_fix_in_oop_method(self):
        plugin, findings = analyzed(
            {
                "t.php": (
                    "<?php class W { public $d;\n"
                    "  public function a() { $this->d = $_COOKIE['p']; }\n"
                    "  public function b() { echo $this->d; } }\n"
                )
            }
        )
        patched, _proposals = apply_fixes(plugin, findings)
        assert "esc_html($this->d)" in patched.files["t.php"]
        assert not PhpSafe().analyze(patched).findings

    def test_original_plugin_untouched(self):
        plugin, findings = analyzed({"t.php": "<?php echo $_GET['m'];"})
        original = plugin.files["t.php"]
        apply_fixes(plugin, findings)
        assert plugin.files["t.php"] == original

    def test_patched_source_parses(self):
        from repro.php import parse_source

        plugin, findings = analyzed(
            {"t.php": "<?php echo \"Hello {$_GET['n']}!\";"}
        )
        patched, _ = apply_fixes(plugin, findings)
        parse_source(patched.files["t.php"])  # must not raise

"""Unit tests for the evaluation harness on hand-built inputs."""

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import InputVector, VulnKind
from repro.core import PhpSafe
from repro.core.results import Finding, ToolReport
from repro.corpus.generator import FileBuilder, GeneratedCorpus
from repro.corpus.spec import GroundTruth, GroundTruthEntry, SeededSpec
from repro.evaluation import (
    analyze_inertia,
    compute_overlap,
    evaluate_version,
    growth_percent,
    match_report,
    tier_shares,
    vector_breakdown,
)
from repro.plugin import Plugin


def truth_with(*entries):
    truth = GroundTruth(version="2014")
    for spec_id, region, file, line, kind, vector in entries:
        spec = SeededSpec(
            spec_id=spec_id, kind=kind, vector=vector, region=region
        )
        truth.add(
            GroundTruthEntry(
                spec=spec, plugin="p", version="2014", file=file, line=line
            )
        )
    return truth


def xss_finding(file, line):
    return Finding(kind=VulnKind.XSS, file=file, line=line, sink="echo")


class TestMatching:
    def test_tp_fp_classification(self):
        truth = truth_with(
            ("v-1", "a", "a.php", 3, VulnKind.XSS, InputVector.GET),
            ("v-2", "fp_ps", "a.php", 9, VulnKind.XSS, InputVector.DB),
        )
        report = ToolReport(tool="T", plugin="p")
        report.add_finding(xss_finding("a.php", 3))   # matches vulnerable
        report.add_finding(xss_finding("a.php", 9))   # matches bait -> FP
        report.add_finding(xss_finding("a.php", 50))  # unmatched -> FP
        result = match_report(report, truth, "p", "2014")
        assert result.counts() == (1, 2)
        assert result.detected_ids == {"v-1"}

    def test_kind_restricted_counts(self):
        truth = truth_with(
            ("v-1", "e_sqli", "a.php", 3, VulnKind.SQLI, InputVector.GET),
        )
        report = ToolReport(tool="T", plugin="p")
        report.add_finding(
            Finding(kind=VulnKind.SQLI, file="a.php", line=3, sink="q")
        )
        result = match_report(report, truth, "p", "2014")
        assert result.counts(VulnKind.SQLI) == (1, 0)
        assert result.counts(VulnKind.XSS) == (0, 0)

    def test_kind_mismatch_is_fp(self):
        truth = truth_with(
            ("v-1", "a", "a.php", 3, VulnKind.SQLI, InputVector.GET),
        )
        report = ToolReport(tool="T", plugin="p")
        report.add_finding(xss_finding("a.php", 3))  # XSS at a SQLi line
        result = match_report(report, truth, "p", "2014")
        assert result.counts() == (0, 1)


def tiny_corpus():
    """A one-plugin corpus with one flow per detector class."""
    source = (
        "<?php\n"
        "echo $_GET['all'];\n"                                # all 3 tools
        "function hook() { echo $_POST['uncalled']; }\n"     # phpSAFE+RIPS
        "$v = get_option('k'); echo $v;\n"                    # phpSAFE only
        "echo $uninit_skin;\n"                                # Pixy only
    )
    plugin = Plugin(name="p", version="1", files={"p.php": source})
    truth = truth_with(
        ("v-all", "a", "p.php", 2, VulnKind.XSS, InputVector.GET),
        ("v-unc", "b", "p.php", 3, VulnKind.XSS, InputVector.POST),
        ("v-wp", "e_wp", "p.php", 4, VulnKind.XSS, InputVector.DB),
        ("v-rg", "g", "p.php", 5, VulnKind.XSS, InputVector.GET),
    )
    return GeneratedCorpus(version="2014", plugins=[plugin], truth=truth)


class TestRunnerAndOverlap:
    def test_tool_detection_sets(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(
            corpus, [PhpSafe(), RipsLike(), PixyLike()]
        )
        assert evaluation.tools["phpSAFE"].match.detected_ids == {
            "v-all", "v-unc", "v-wp",
        }
        assert evaluation.tools["RIPS"].match.detected_ids == {"v-all", "v-unc"}
        assert evaluation.tools["Pixy"].match.detected_ids == {"v-all", "v-rg"}

    def test_union_and_confusion_conventions(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe(), RipsLike(), PixyLike()])
        assert evaluation.union_detected() == {"v-all", "v-unc", "v-wp", "v-rg"}
        paper = evaluation.confusion("RIPS", convention="paper")
        assert paper.tp == 2 and paper.fn == 2
        exact = evaluation.confusion("RIPS", convention="exact")
        assert exact.fn == 2  # same here: ground truth == union

    def test_overlap_regions(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe(), RipsLike(), PixyLike()])
        overlap = compute_overlap(evaluation)
        assert overlap.union_total == 4
        assert overlap.region("phpSAFE") == 1           # v-wp
        assert overlap.region("Pixy") == 1              # v-rg
        assert overlap.region("phpSAFE", "RIPS") == 1   # v-unc
        assert overlap.region("phpSAFE", "RIPS", "Pixy") == 1  # v-all
        assert overlap.shared_by_all() == 1

    def test_growth_percent(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe()])
        overlap = compute_overlap(evaluation)
        assert growth_percent(overlap, overlap) == 0.0

    def test_timing_repetitions(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe()], timing_repetitions=3)
        assert len(evaluation.tools["phpSAFE"].timing_runs) == 3
        assert evaluation.tools["phpSAFE"].seconds_mean > 0

    def test_classification_happens_for_every_plugin(self):
        # matching runs outside the timed region but must still see
        # every plugin's report exactly once
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe()], timing_repetitions=2)
        assert evaluation.tools["phpSAFE"].match.detected_ids == {
            "v-all", "v-unc", "v-wp",
        }
        assert len(evaluation.tools["phpSAFE"].match.classified) == 3

    def test_parallel_jobs_match_serial(self):
        corpus = tiny_corpus()
        serial = evaluate_version(corpus, [PhpSafe()])
        parallel = evaluate_version(corpus, [PhpSafe()], jobs=2)
        assert (
            parallel.tools["phpSAFE"].match.detected_ids
            == serial.tools["phpSAFE"].match.detected_ids
        )
        assert (
            parallel.tools["phpSAFE"].files_analyzed
            == serial.tools["phpSAFE"].files_analyzed
        )

    def test_cache_dir_keeps_results_stable(self, tmp_path):
        corpus = tiny_corpus()
        cache_dir = str(tmp_path / "cache")
        first = evaluate_version(corpus, [PhpSafe()], cache_dir=cache_dir)
        second = evaluate_version(corpus, [PhpSafe()], cache_dir=cache_dir)
        assert (
            first.tools["phpSAFE"].match.detected_ids
            == second.tools["phpSAFE"].match.detected_ids
        )


class TestVectorsAndInertia:
    def test_vector_breakdown_detected_only(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PixyLike()])
        breakdown = vector_breakdown(evaluation)  # Pixy found GET flows only
        assert breakdown.row("GET") == 2
        assert breakdown.row("DB") == 0
        full = vector_breakdown(evaluation, detected_only=False)
        assert full.total == 4

    def test_tier_shares(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe(), RipsLike(), PixyLike()])
        shares = tier_shares(vector_breakdown(evaluation))
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert shares[1] == 0.75  # 3 of 4 direct

    def test_inertia_empty_when_nothing_carried(self):
        corpus = tiny_corpus()
        evaluation = evaluate_version(corpus, [PhpSafe()])
        analysis = analyze_inertia(evaluation, evaluation)
        assert analysis.carried == 0
        assert analysis.carried_share == 0.0


class TestFileBuilder:
    def test_sink_line_tracking(self):
        from repro.corpus.snippets import direct_echo_main

        builder = FileBuilder("x.php")
        fragment = direct_echo_main("s-1", InputVector.GET)
        line = builder.add(fragment)
        source = builder.source()
        assert "echo" in source.splitlines()[line - 1]

    def test_no_sink_returns_none(self):
        from repro.corpus.snippets import noise_loop_block

        builder = FileBuilder("x.php")
        assert builder.add(noise_loop_block("u1")) is None

"""Cross-feature interaction matrix: combinations of engine features
(sanitizers × reverts × OOP × scopes × baselines) not covered by the
per-feature suites."""

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import InputVector, VulnKind
from repro.core import PhpSafe

from tests.helpers import analyze, findings_of


def xss(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


def sqli(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.SQLI]


class TestSanitizerRevertInteractions:
    def test_wp_filter_then_revert(self):
        source = (
            "<?php $s = esc_html($_GET['x']); echo html_entity_decode($s);"
        )
        assert xss(source)

    def test_double_sanitization_stays_clean(self):
        source = "<?php echo esc_html(htmlentities($_GET['x']));"
        assert not xss(source)

    def test_revert_then_sanitize_is_clean(self):
        source = "<?php echo htmlentities(stripslashes($_GET['x']));"
        assert not xss(source)

    def test_kind_specific_filters_compose(self):
        # esc_sql removes SQLi, esc_html removes XSS; both applied = clean
        source = (
            "<?php $v = esc_html(esc_sql($_GET['x']));"
            "echo $v; $wpdb->query('Q' . $v);"
        )
        assert not findings_of(source)

    def test_partial_sanitization_in_concat(self):
        # one branch sanitized, one not: taint survives the concat
        source = "<?php echo esc_html($_GET['a']) . $_GET['b'];"
        assert xss(source)

    def test_sanitizer_inside_interpolation(self):
        # function calls cannot appear in PHP interpolation directly;
        # pre-computed sanitized value stays clean
        source = "<?php $c = esc_html($_GET['a']); echo \"v: $c\";"
        assert not xss(source)


class TestOopScopeInteractions:
    def test_method_reading_global_wpdb_data(self):
        source = (
            "<?php class R {"
            "  public function pull() { global $wpdb;"
            "    return $wpdb->get_var('SELECT x'); } }"
            "$r = new R(); echo $r->pull();"
        )
        found = xss(source)
        assert found and found[0].vectors == (InputVector.DB,)

    def test_property_sanitized_on_write(self):
        source = (
            "<?php class W { public $d;"
            "  public function set() { $this->d = esc_html($_GET['x']); }"
            "  public function show() { echo $this->d; } }"
        )
        assert not xss(source)

    def test_property_sanitized_on_read(self):
        source = (
            "<?php class W { public $d;"
            "  public function set() { $this->d = $_GET['x']; }"
            "  public function show() { echo esc_html($this->d); } }"
        )
        assert not xss(source)

    def test_two_classes_properties_do_not_mix(self):
        source = (
            "<?php class A { public $v;"
            "  public function fill() { $this->v = $_GET['x']; } }"
            "class B { public $v;"
            "  public function show() { echo $this->v; } }"
        )
        assert not xss(source)

    def test_sibling_classes_shared_parent_property(self):
        source = (
            "<?php class Base { public $buf; }"
            "class A extends Base {"
            "  public function fill() { $this->buf = $_GET['x']; } }"
            "class B extends Base {"
            "  public function show() { echo $this->buf; } }"
        )
        # object-insensitive store: siblings share the declaring class's
        # slot, so the flow is (conservatively) connected
        assert xss(source)

    def test_static_method_on_instance_variable_class(self):
        source = (
            "<?php class U { public static function put($v) { echo $v; } }"
            "$cls = new U(); $cls::put($_GET['x']);"
        )
        assert xss(source)

    def test_method_argument_then_property_then_sink(self):
        source = (
            "<?php class Pipe { public $held;"
            "  public function take($v) { $this->held = $v; }"
            "  public function out() { echo $this->held; } }"
            "$p = new Pipe(); $p->take($_COOKIE['c']); $p->out();"
        )
        found = xss(source)
        assert found and found[0].vectors == (InputVector.COOKIE,)


class TestBaselineInteractions:
    def test_rips_propagate_does_not_invent_sources(self):
        # unknown functions propagate args but literals stay clean
        source = "<?php echo mystery_format('static', 'also static');"
        assert not xss(source, RipsLike())

    def test_rips_propagates_through_unknown_chains(self):
        source = "<?php echo wp_mangle(wp_fold($_GET['x']));"
        assert xss(source, RipsLike())
        assert not xss(source, PhpSafe())  # phpSAFE trusts unknown code

    def test_pixy_register_globals_not_in_functions(self):
        # uninitialized locals inside called functions are not sources
        source = "<?php function f() { echo $local_never_set; } f();"
        assert not xss(source, PixyLike())

    def test_pixy_sees_flows_in_called_functions(self):
        source = "<?php function f() { echo $_GET['x']; } f();"
        assert xss(source, PixyLike())

    def test_pixy_include_still_analyzed(self):
        from repro.baselines import PixyLike
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={
                "main.php": "<?php $v = $_GET['v']; include 'part.php';",
                "part.php": "<?php echo $v;",
            },
        )
        report = PixyLike().analyze(plugin)
        assert report.findings

    def test_all_tools_agree_on_textbook_flow(self):
        source = "<?php echo $_GET['q'];"
        for tool in (PhpSafe(), RipsLike(), PixyLike()):
            assert xss(source, tool), tool.name

    def test_all_tools_silent_on_constant_page(self):
        source = "<?php echo '<h1>About</h1>'; echo date('Y');"
        for tool in (PhpSafe(), RipsLike(), PixyLike()):
            assert not findings_of(source, tool), tool.name


class TestVectorBookkeeping:
    def test_multiple_sources_merge_vectors(self):
        source = "<?php $m = $_GET['a'] . $_POST['b']; echo $m;"
        found = xss(source)
        assert found[0].vectors == (InputVector.GET, InputVector.POST)

    def test_primary_vector_prefers_direct(self):
        source = "<?php $m = get_option('k') . $_COOKIE['c']; echo $m;"
        found = xss(source)
        assert found[0].primary_vector is InputVector.COOKIE

    def test_file_vector_through_function_chain(self):
        source = (
            "<?php function tail($fp) { return fgets($fp); }"
            "echo tail($h);"
        )
        found = xss(source)
        assert found and found[0].vectors == (InputVector.FILE,)

    def test_sqli_and_xss_same_variable_distinct_findings(self):
        source = (
            "<?php $v = $_GET['x'];"
            "echo $v;\n"
            "mysql_query('Q' . $v);"
        )
        report = analyze(source)
        kinds = sorted(f.kind.value for f in report.findings)
        assert kinds == ["sqli", "xss"]


class TestTraceQuality:
    def test_trace_names_source_and_hops(self):
        source = "<?php $a = $_GET['x']; $b = $a; echo $b;"
        found = xss(source)
        trace_text = " ".join(found[0].trace)
        assert "$_GET" in trace_text
        assert "$a" in trace_text and "$b" in trace_text

    def test_trace_bounded(self):
        hops = "".join(f"$v{i+1} = $v{i};" for i in range(50))
        source = f"<?php $v0 = $_GET['x']; {hops} echo $v50;"
        found = xss(source)
        assert len(found[0].trace) <= 12

    def test_variable_name_reported(self):
        found = xss("<?php $greeting = $_GET['x']; echo $greeting;")
        assert found[0].variable == "$greeting"

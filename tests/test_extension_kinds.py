"""Tests for the extension vulnerability kinds (CMDI, LFI).

These extend the paper's XSS/SQLi coverage along its future-work axis;
they ride the same taint machinery and must not disturb the calibrated
XSS/SQLi behaviour (the integration suite guards that separately).
"""

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe

from tests.helpers import findings_of


def of_kind(source, kind, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is kind]


class TestCommandInjection:
    def test_system_sink(self):
        found = of_kind("<?php system('ping ' . $_GET['h']);", VulnKind.CMDI)
        assert len(found) == 1
        assert found[0].sink == "system"

    def test_exec_family(self):
        for sink in ("exec", "passthru", "shell_exec", "popen"):
            assert of_kind(f"<?php {sink}($_POST['c']);", VulnKind.CMDI), sink

    def test_backtick_operator(self):
        found = of_kind('<?php $out = `cat {$_GET["f"]}`;', VulnKind.CMDI)
        assert found and found[0].sink == "`...`"

    def test_escapeshellarg_sanitizes(self):
        source = "<?php system('ping ' . escapeshellarg($_GET['h']));"
        assert not of_kind(source, VulnKind.CMDI)

    def test_escapeshellarg_does_not_sanitize_xss(self):
        source = "<?php echo escapeshellarg($_GET['h']);"
        assert of_kind(source, VulnKind.XSS)

    def test_htmlentities_does_not_sanitize_cmdi(self):
        source = "<?php system(htmlentities($_GET['h']));"
        assert of_kind(source, VulnKind.CMDI)

    def test_intval_sanitizes_cmdi(self):
        assert not findings_of("<?php system('kill ' . intval($_GET['pid']));")

    def test_only_command_argument_is_sensitive(self):
        source = "<?php exec('ls', $output, $_GET['x']);"
        assert not of_kind(source, VulnKind.CMDI)

    def test_flows_through_functions(self):
        source = (
            "<?php function run($c) { system($c); }"
            "run('convert ' . $_GET['file']);"
        )
        assert of_kind(source, VulnKind.CMDI)


class TestFileInclusion:
    def test_tainted_include(self):
        found = of_kind("<?php include $_GET['page'] . '.php';", VulnKind.LFI)
        assert found and found[0].sink == "include"

    def test_all_include_forms(self):
        for form in ("include", "include_once", "require", "require_once"):
            found = of_kind(f"<?php {form} $_GET['p'];", VulnKind.LFI)
            assert found and found[0].sink == form

    def test_literal_include_clean(self):
        assert not of_kind("<?php include 'templates/header.php';", VulnKind.LFI)

    def test_basename_sanitizes(self):
        source = "<?php include 'tpl/' . basename($_GET['t']) . '.php';"
        assert not of_kind(source, VulnKind.LFI)

    def test_basename_does_not_sanitize_xss(self):
        assert of_kind("<?php echo basename($_GET['t']);", VulnKind.XSS)

    def test_include_in_uncalled_function(self):
        source = "<?php function loader() { include $_COOKIE['skin']; }"
        assert of_kind(source, VulnKind.LFI)

    def test_db_data_in_include(self):
        source = "<?php $tpl = get_option('theme'); include $tpl;"
        assert of_kind(source, VulnKind.LFI)


class TestBaselineScope:
    def test_rips_also_covers_extensions(self):
        # real RIPS detects 20 types; the RIPS-like inherits the generic
        # knowledge base, so procedural CMDI flows are in its reach
        assert of_kind("<?php system($_GET['c']);", VulnKind.CMDI, RipsLike())

    def test_pixy_stays_xss_sqli_only(self):
        assert not of_kind("<?php system($_GET['c']);", VulnKind.CMDI, PixyLike())
        assert not of_kind("<?php include $_GET['p'];", VulnKind.LFI, PixyLike())

    def test_extension_kinds_do_not_disturb_xss(self):
        source = "<?php system($_GET['c']); echo $_GET['x'];"
        report = PhpSafe().analyze_source(source)
        kinds = sorted(f.kind.value for f in report.findings)
        assert kinds == ["cmdi", "xss"]

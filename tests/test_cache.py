"""Tests for the incremental parse cache."""

from repro.core import ModelCache, PhpSafe
from repro.core.model import PluginModel
from repro.plugin import Plugin

SOURCE = "<?php echo $_GET['q'];"


class TestModelCache:
    def test_hit_after_store(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        PluginModel.build(plugin, cache=cache)
        assert cache.stats.misses == 1
        PluginModel.build(plugin, cache=cache)
        assert cache.stats.hits == 1

    def test_content_change_misses(self):
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        PluginModel.build(
            Plugin(name="p", files={"a.php": SOURCE + " echo 1;"}), cache=cache
        )
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_same_content_different_path_misses(self):
        # includes resolve by path, so the key is path-sensitive
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        PluginModel.build(Plugin(name="p", files={"b.php": SOURCE}), cache=cache)
        assert cache.stats.misses == 2

    def test_parse_failures_cached(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"bad.php": "<?php $a = ;"})
        first = PluginModel.build(plugin, cache=cache)
        second = PluginModel.build(plugin, cache=cache)
        assert "bad.php" in first.parse_failures
        assert "bad.php" in second.parse_failures
        assert cache.stats.hits == 1

    def test_eviction_bounds_size(self):
        cache = ModelCache(max_entries=4)
        for index in range(10):
            plugin = Plugin(name="p", files={f"f{index}.php": SOURCE})
            PluginModel.build(plugin, cache=cache)
        assert len(cache) <= 4

    def test_clear(self):
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestCachedAnalysis:
    def test_same_findings_with_and_without_cache(self):
        plugin = Plugin(
            name="p",
            files={
                "a.php": "<?php echo $_GET['x']; echo esc_html($_GET['y']);",
                "b.php": "<?php function hook() { echo $_POST['z']; }",
            },
        )
        plain = PhpSafe().analyze(plugin)
        cache = ModelCache()
        cached_tool = PhpSafe(cache=cache)
        first = cached_tool.analyze(plugin)
        second = cached_tool.analyze(plugin)  # fully from cache
        keys = lambda report: sorted(f.key for f in report.findings)
        assert keys(plain) == keys(first) == keys(second)
        assert cache.stats.hits >= 2

    def test_cache_shared_across_tools(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        PhpSafe(cache=cache).analyze(plugin)
        PhpSafe(cache=cache).analyze(plugin)
        assert cache.stats.hit_rate >= 0.5

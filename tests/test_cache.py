"""Tests for the incremental parse cache (memory LRU + disk tier)."""

from repro.batch import DiskModelCache
from repro.core import ModelCache, PhpSafe
from repro.core.cache import content_key
from repro.core.model import PluginModel
from repro.php.errors import PhpParseError
from repro.plugin import Plugin

SOURCE = "<?php echo $_GET['q'];"


class TestModelCache:
    def test_hit_after_store(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        PluginModel.build(plugin, cache=cache)
        assert cache.stats.misses == 1
        PluginModel.build(plugin, cache=cache)
        assert cache.stats.hits == 1

    def test_content_change_misses(self):
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        PluginModel.build(
            Plugin(name="p", files={"a.php": SOURCE + " echo 1;"}), cache=cache
        )
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_same_content_different_path_misses(self):
        # includes resolve by path, so the key is path-sensitive
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        PluginModel.build(Plugin(name="p", files={"b.php": SOURCE}), cache=cache)
        assert cache.stats.misses == 2

    def test_parse_failures_cached(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"bad.php": "<?php $a = ;"})
        first = PluginModel.build(plugin, cache=cache)
        second = PluginModel.build(plugin, cache=cache)
        assert "bad.php" in first.parse_failures
        assert "bad.php" in second.parse_failures
        assert cache.stats.hits == 1

    def test_eviction_bounds_size(self):
        cache = ModelCache(max_entries=4)
        for index in range(10):
            plugin = Plugin(name="p", files={f"f{index}.php": SOURCE})
            PluginModel.build(plugin, cache=cache)
        assert len(cache) <= 4

    def test_clear(self):
        cache = ModelCache()
        PluginModel.build(Plugin(name="p", files={"a.php": SOURCE}), cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestLruEviction:
    def test_capacity_is_exactly_max_entries(self):
        cache = ModelCache(max_entries=3)
        for index in range(3):
            cache.store(f"f{index}.php", SOURCE, object())
        # the cache holds max_entries entries, not max_entries - 1
        assert len(cache) == 3
        assert cache.stats.evictions == 0
        cache.store("f3.php", SOURCE, object())
        assert len(cache) == 3
        assert cache.stats.evictions == 1

    def test_hit_touches_entry(self):
        cache = ModelCache(max_entries=2)
        cache.store("a.php", SOURCE, object())
        cache.store("b.php", SOURCE, object())
        # touching `a` makes `b` the LRU victim of the next insert
        model, _error = cache.lookup("a.php", SOURCE)
        assert model is not None
        cache.store("c.php", SOURCE, object())
        assert cache.lookup("a.php", SOURCE)[0] is not None
        assert cache.lookup("b.php", SOURCE) == (None, None)

    def test_untouched_entry_evicted_fifo(self):
        cache = ModelCache(max_entries=2)
        cache.store("a.php", SOURCE, object())
        cache.store("b.php", SOURCE, object())
        cache.store("c.php", SOURCE, object())
        assert cache.lookup("a.php", SOURCE) == (None, None)
        assert cache.lookup("b.php", SOURCE)[0] is not None

    def test_failure_entries_share_the_budget_and_evict(self):
        cache = ModelCache(max_entries=2)
        cache.store_failure("bad.php", "x", PhpParseError("nope", "bad.php", 1))
        cache.store("a.php", SOURCE, object())
        cache.store("b.php", SOURCE, object())  # evicts the failure (LRU)
        assert len(cache) == 2
        assert cache.lookup("bad.php", "x") == (None, None)
        assert cache.lookup("a.php", SOURCE)[0] is not None

    def test_restore_refreshes_instead_of_evicting(self):
        cache = ModelCache(max_entries=2)
        cache.store("a.php", SOURCE, object())
        cache.store("b.php", SOURCE, object())
        cache.store("a.php", SOURCE, object())  # refresh, not a new entry
        assert len(cache) == 2
        assert cache.stats.evictions == 0


class TestDiskModelCache:
    def test_disk_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        first = DiskModelCache(cache_dir)
        PluginModel.build(plugin, cache=first)
        assert first.disk_len() == 1
        # a fresh process would construct a new cache over the same dir
        second = DiskModelCache(cache_dir)
        model = PluginModel.build(plugin, cache=second)
        assert second.stats.hits == 1
        assert second.stats.disk_hits == 1
        assert second.stats.misses == 0
        assert "a.php" in model.files

    def test_failure_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugin = Plugin(name="p", files={"bad.php": "<?php $a = ;"})
        PluginModel.build(plugin, cache=DiskModelCache(cache_dir))
        second = DiskModelCache(cache_dir)
        model = PluginModel.build(plugin, cache=second)
        assert "bad.php" in model.parse_failures
        error = model.parse_failures["bad.php"]
        assert error.filename == "bad.php"  # structured fields survive pickling
        assert second.stats.disk_hits == 1

    def test_memory_eviction_keeps_disk_object(self, tmp_path):
        cache = DiskModelCache(str(tmp_path / "cache"), max_entries=1)
        cache.store("a.php", SOURCE, {"model": "a"})
        cache.store("b.php", SOURCE, {"model": "b"})  # evicts `a` from memory
        assert len(cache) == 1
        model, _error = cache.lookup("a.php", SOURCE)  # served from disk
        assert model == {"model": "a"}
        assert cache.stats.disk_hits == 1

    def test_corrupted_object_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = DiskModelCache(cache_dir)
        cache.store("a.php", SOURCE, {"model": "a"})
        path = cache._object_path(content_key("a.php", SOURCE))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        fresh = DiskModelCache(cache_dir)
        assert fresh.lookup("a.php", SOURCE) == (None, None)
        assert fresh.stats.misses == 1

    def test_clear_drops_disk_tier(self, tmp_path):
        cache = DiskModelCache(str(tmp_path / "cache"))
        cache.store("a.php", SOURCE, {"model": "a"})
        cache.clear()
        assert cache.disk_len() == 0
        assert DiskModelCache(str(tmp_path / "cache")).lookup("a.php", SOURCE) == (
            None,
            None,
        )

    def test_analysis_through_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        plain = PhpSafe().analyze(plugin)
        warm = PhpSafe(cache_dir=cache_dir).analyze(plugin)
        rerun = PhpSafe(cache_dir=cache_dir).analyze(plugin)
        keys = lambda report: sorted(f.key for f in report.findings)
        assert keys(plain) == keys(warm) == keys(rerun)


class TestCachedAnalysis:
    def test_same_findings_with_and_without_cache(self):
        plugin = Plugin(
            name="p",
            files={
                "a.php": "<?php echo $_GET['x']; echo esc_html($_GET['y']);",
                "b.php": "<?php function hook() { echo $_POST['z']; }",
            },
        )
        plain = PhpSafe().analyze(plugin)
        cache = ModelCache()
        cached_tool = PhpSafe(cache=cache)
        first = cached_tool.analyze(plugin)
        second = cached_tool.analyze(plugin)  # fully from cache
        keys = lambda report: sorted(f.key for f in report.findings)
        assert keys(plain) == keys(first) == keys(second)
        assert cache.stats.hits >= 2

    def test_cache_shared_across_tools(self):
        cache = ModelCache()
        plugin = Plugin(name="p", files={"a.php": SOURCE})
        PhpSafe(cache=cache).analyze(plugin)
        PhpSafe(cache=cache).analyze(plugin)
        assert cache.stats.hit_rate >= 0.5

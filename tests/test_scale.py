"""Tests for memory-bounded streaming evaluation and the stress tiers.

Covers the byte-bounded cache (whichever cap trips first), the
O(n) report-merge index, the process-cache occupancy telemetry, the
deterministic stress-corpus generator, the JSONL findings stream, and
streaming-vs-accumulating finding parity.
"""

import json

import pytest

from repro.batch import DiskModelCache
from repro.batch.streaming import (
    DEFAULT_MAX_CACHE_BYTES,
    stream_scan,
    streaming_options,
)
from repro.core import ModelCache, PhpSafe
from repro.core.cache import approx_object_bytes, content_key
from repro.core.model import PluginModel
from repro.core.phpsafe import PhpSafeOptions, process_cache_occupancy
from repro.core.results import (
    Finding,
    JsonlFindingSink,
    ToolReport,
    finding_from_dict,
    finding_signatures,
    finding_to_dict,
    read_finding_stream,
    stream_reports,
    stream_signatures,
)
from repro.config.vulnerability import InputVector, VulnKind
from repro.corpus.generator import build_corpus
from repro.corpus.stress import (
    TIERS,
    StressTier,
    get_tier,
    iter_stress_plugins,
    stress_options,
    tier_summary,
)
from repro.plugin import Plugin

SOURCE = "<?php echo $_GET['q'];"


def _php_file(lines: int, uid: str) -> str:
    body = "\n".join(f"$x{uid}_{i} = {i};" for i in range(lines))
    return f"<?php\n{body}\n"


# ---------------------------------------------------------------------------
# Satellite 1: byte-bounded ModelCache / DiskModelCache
# ---------------------------------------------------------------------------


class TestByteBoundedCache:
    def test_byte_cap_evicts_before_entry_cap(self):
        # entries are far under max_entries, but their estimated bytes
        # exceed max_bytes — the byte cap must drive eviction
        cache = ModelCache(max_entries=1000, max_bytes=200_000)
        for index in range(10):
            plugin = Plugin(
                name="p", files={f"f{index}.php": _php_file(60, str(index))}
            )
            PluginModel.build(plugin, cache=cache)
        assert len(cache) < 10
        assert cache.current_bytes <= 200_000
        assert cache.stats.byte_evictions > 0
        assert cache.stats.evictions >= cache.stats.byte_evictions

    def test_oversized_entry_never_retained(self):
        # a single entry bigger than the whole byte budget must not be
        # pinned in memory, and must not evict everything else to fit
        cache = ModelCache(max_entries=1000, max_bytes=100_000)
        small = Plugin(name="p", files={"small.php": SOURCE})
        PluginModel.build(small, cache=cache)
        resident = len(cache)
        big = Plugin(name="p", files={"big.php": _php_file(2000, "big")})
        PluginModel.build(big, cache=cache)
        assert cache.stats.oversized == 1
        assert len(cache) == resident  # the small entry survived
        assert cache.current_bytes <= 100_000
        # and the oversized model is simply recomputed on demand
        model = PluginModel.build(big, cache=cache)
        assert "big.php" in model.files

    def test_oversized_entry_still_persists_on_disk(self, tmp_path):
        cache = DiskModelCache(str(tmp_path), max_bytes=100_000)
        big = Plugin(name="p", files={"big.php": _php_file(2000, "big")})
        PluginModel.build(big, cache=cache)
        assert cache.stats.oversized >= 1
        assert len(cache) == 0
        assert cache.disk_len() == 1  # served persistently, never pinned
        disk_hits_before = cache.stats.disk_hits
        PluginModel.build(big, cache=cache)
        assert cache.stats.disk_hits == disk_hits_before + 1

    def test_byte_accounting_survives_eviction_and_refresh(self):
        cache = ModelCache(max_entries=3, max_bytes=None)
        plugins = [
            Plugin(name="p", files={f"f{i}.php": _php_file(10, str(i))})
            for i in range(5)
        ]
        for plugin in plugins:
            PluginModel.build(plugin, cache=cache)
        for plugin in plugins:  # refresh path re-estimates sizes
            PluginModel.build(plugin, cache=cache)
        assert cache.current_bytes == sum(cache._sizes.values())
        cache.clear()
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_spill_releases_bytes(self):
        cache = ModelCache(max_entries=100)
        plugin = Plugin(
            name="p",
            files={"a.php": _php_file(20, "a"), "b.php": _php_file(20, "b")},
        )
        PluginModel.build(plugin, cache=cache)
        before = cache.current_bytes
        assert before > 0
        keys = [
            content_key(path, source) for path, source in plugin.iter_files()
        ]
        released = cache.spill(keys)
        assert released == before
        assert cache.current_bytes == 0
        assert cache.spill(keys) == 0  # idempotent

    def test_occupancy_shape(self):
        cache = ModelCache(max_entries=7, max_bytes=1234)
        occupancy = cache.occupancy()
        assert occupancy == {
            "entries": 0,
            "max_entries": 7,
            "bytes": 0,
            "max_bytes": 1234,
            "evictions": 0,
            "byte_evictions": 0,
            "oversized": 0,
        }

    def test_approx_sizes_scale_with_content(self):
        plugin = Plugin(
            name="p",
            files={"a.php": _php_file(10, "a"), "b.php": _php_file(500, "b")},
        )
        model = PluginModel.build(plugin)
        small = approx_object_bytes(model.files["a.php"])
        large = approx_object_bytes(model.files["b.php"])
        assert large > 10 * small


# ---------------------------------------------------------------------------
# Satellite 2: O(n) merge after direct findings mutation
# ---------------------------------------------------------------------------


class TestMergeIndexStaleness:
    @staticmethod
    def _finding(index: int, plugin: str = "") -> Finding:
        return Finding(
            kind=VulnKind.XSS,
            file=f"f{index}.php",
            line=index + 1,
            sink="echo",
            plugin=plugin,
        )

    def test_direct_mutation_still_dedupes(self):
        report = ToolReport(tool="t", plugin="p")
        report.findings.append(self._finding(0))
        assert report.add_finding(self._finding(0)) is False
        assert report.add_finding(self._finding(1)) is True
        assert len(report.findings) == 2

    def test_10k_merge_rebuilds_index_once(self):
        # the quadratic case: findings that already contain dedup-key
        # duplicates make len(_seen_keys) != len(findings) forever, so
        # the pre-fix staleness check rebuilt the set on *every* insert
        report = ToolReport(tool="t", plugin="p")
        report.findings.append(self._finding(0))
        report.findings.append(self._finding(0))  # direct duplicate
        for index in range(10_000):
            report.add_finding(self._finding(index + 1))
        assert len(report.findings) == 10_002
        assert report._index_rebuilds == 1

    def test_10k_two_report_merge_is_linear(self):
        left = ToolReport(tool="t", plugin="left")
        right = ToolReport(tool="t", plugin="right")
        # direct bulk assignment, the documented fast-path batch usage
        left.findings = [self._finding(i, "left") for i in range(5_000)]
        right.findings = [self._finding(i, "right") for i in range(5_000)]
        merged = left.merged(right)
        assert len(merged.findings) == 10_000
        # one rebuild per staleness event, not one per insert
        assert merged._index_rebuilds <= 1


# ---------------------------------------------------------------------------
# Satellite 3: process-cache byte cap + occupancy telemetry
# ---------------------------------------------------------------------------


class TestProcessCacheOccupancy:
    def test_occupancy_without_forcing_creation(self, monkeypatch):
        import repro.core.phpsafe as phpsafe_module

        monkeypatch.setattr(phpsafe_module, "_PROCESS_CACHE", None)
        occupancy = process_cache_occupancy()
        assert occupancy["entries"] == 0 and occupancy["bytes"] == 0
        assert occupancy["max_bytes"] == phpsafe_module._PROCESS_CACHE_MAX_BYTES
        assert phpsafe_module._PROCESS_CACHE is None  # not forced alive

    def test_process_cache_is_byte_capped(self, monkeypatch):
        import repro.core.phpsafe as phpsafe_module

        monkeypatch.setattr(phpsafe_module, "_PROCESS_CACHE", None)
        cache = phpsafe_module.process_cache()
        assert cache.max_bytes == phpsafe_module._PROCESS_CACHE_MAX_BYTES
        PhpSafe().analyze(Plugin(name="p", files={"a.php": SOURCE}))
        occupancy = process_cache_occupancy()
        assert occupancy["entries"] > 0 and occupancy["bytes"] > 0

    def test_telemetry_document_reports_process_cache(self):
        from repro.batch.telemetry import SCHEMA, ScanTelemetry

        assert SCHEMA == "repro.batch.telemetry/v7"
        document = ScanTelemetry().to_dict()
        assert document["schema"] == SCHEMA
        assert set(document["process_cache"]) == {
            "entries",
            "max_entries",
            "bytes",
            "max_bytes",
            "evictions",
            "byte_evictions",
            "oversized",
        }

    def test_telemetry_honours_explicit_occupancy(self):
        from repro.batch.telemetry import ScanTelemetry

        telemetry = ScanTelemetry(process_cache={"entries": 42})
        assert telemetry.to_dict()["process_cache"] == {"entries": 42}


# ---------------------------------------------------------------------------
# Satellite 4a: stress-corpus generator
# ---------------------------------------------------------------------------

#: a miniature tier so generator tests stay fast; same shapes as the
#: real catalog
MINI = StressTier(
    name="scale-mini",
    tiny_plugins=3,
    tiny_loc=60,
    chain_plugins=2,
    chain_depth=5,
    chain_loc=30,
    huge_plugins=1,
    huge_loc=400,
    streaming_rss_mb=256,
)


class TestStressCorpus:
    def test_catalog_tiers(self):
        assert set(TIERS) == {"scale-smoke", "scale-quarter", "scale-1m"}
        assert TIERS["scale-1m"].target_loc >= 1_000_000
        for tier in TIERS.values():
            assert tier.expected_findings > 0
            assert tier.streaming_rss_mb > 0
        with pytest.raises(KeyError):
            get_tier("scale-nope")

    def test_deterministic_under_fixed_seed(self):
        first = {
            plugin.name: dict(plugin.files)
            for plugin in iter_stress_plugins(MINI, seed=7)
        }
        second = {
            plugin.name: dict(plugin.files)
            for plugin in iter_stress_plugins(MINI, seed=7)
        }
        assert first == second  # byte-identical

    def test_seed_changes_noise_not_flows(self):
        base = list(iter_stress_plugins(MINI, seed=0))
        other = list(iter_stress_plugins(MINI, seed=1))
        assert [p.name for p in base] == [p.name for p in other]
        tool = PhpSafe(options=stress_options(), use_process_cache=False)
        for left, right in zip(base, other):
            left_report = tool.analyze(left)
            right_report = tool.analyze(right)
            assert finding_signatures([left_report]) == finding_signatures(
                [right_report]
            )

    def test_shape_invariants(self):
        plugins = list(iter_stress_plugins(MINI))
        assert len(plugins) == MINI.plugin_count
        tiny = [p for p in plugins if p.name.startswith("stress-tiny")]
        chains = [p for p in plugins if p.name.startswith("stress-chain")]
        huge = [p for p in plugins if p.name.startswith("stress-huge")]
        assert (len(tiny), len(chains), len(huge)) == (3, 2, 1)
        for plugin in tiny:
            assert plugin.file_count == 1
            assert plugin.loc >= MINI.tiny_loc
        for plugin in chains:
            # main file plus one file per chain step
            assert plugin.file_count == MINI.chain_depth + 1
            steps = [p for p in plugin.files if p.startswith("steps/")]
            assert len(steps) == MINI.chain_depth
        for plugin in huge:
            assert plugin.file_count == 1
            assert plugin.loc >= MINI.huge_loc

    def test_generated_loc_tracks_target(self):
        summary = tier_summary(MINI)
        assert summary["plugins"] == MINI.plugin_count
        # padding overshoots by at most one fragment per file
        assert MINI.target_loc <= summary["loc"] <= MINI.target_loc * 1.2

    def test_expected_findings_reached(self):
        tool = PhpSafe(options=stress_options(), use_process_cache=False)
        found = sum(
            len(tool.analyze(plugin).findings)
            for plugin in iter_stress_plugins(MINI)
        )
        assert found == MINI.expected_findings


# ---------------------------------------------------------------------------
# Satellite 4b: JSONL findings stream
# ---------------------------------------------------------------------------


class TestFindingStream:
    def _report(self) -> ToolReport:
        report = ToolReport(tool="phpSAFE", plugin="demo@1.0")
        report.add_finding(
            Finding(
                kind=VulnKind.XSS,
                file="a.php",
                line=3,
                sink="echo",
                variable="$x",
                vectors=(InputVector.GET,),
                trace=("$_GET['q'] -> $x", "echo $x"),
                via_oop=True,
                markup_context="html",
            )
        )
        report.files_analyzed = 2
        report.loc_analyzed = 40
        report.seconds = 0.25
        return report

    def test_finding_roundtrip(self):
        finding = self._report().findings[0]
        assert finding_from_dict(finding_to_dict(finding)) == finding

    def test_sink_then_stream_reports(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        report = self._report()
        with JsonlFindingSink(path, tool="phpSAFE") as sink:
            assert sink.write_report(report) == 1
        records = list(read_finding_stream(path))
        assert records[0]["record"] == "header"
        assert [r["record"] for r in records[1:]] == ["finding", "plugin"]
        rebuilt = list(stream_reports(path))
        assert len(rebuilt) == 1
        assert finding_signatures(rebuilt) == finding_signatures([report])
        assert rebuilt[0].loc_analyzed == 40
        assert rebuilt[0].findings[0].trace == report.findings[0].trace
        assert stream_signatures(path) == finding_signatures([report])

    def test_stream_stamps_plugin(self, tmp_path):
        # single-plugin reports carry unstamped findings; the sink must
        # stamp them like ToolReport.merged does, so signatures agree
        path = str(tmp_path / "findings.jsonl")
        report = ToolReport(tool="t", plugin="owner@1")
        report.add_finding(
            Finding(kind=VulnKind.SQLI, file="b.php", line=9, sink="query")
        )
        with JsonlFindingSink(path) as sink:
            sink.write_report(report)
        (signature,) = stream_signatures(path)
        assert signature[0] == "owner@1"


# ---------------------------------------------------------------------------
# Tentpole: streaming scan + parity
# ---------------------------------------------------------------------------


class TestStreamingScan:
    def test_stream_scan_mini_tier(self, tmp_path):
        sink = str(tmp_path / "findings.jsonl")
        summary = stream_scan(
            iter_stress_plugins(MINI),
            sink,
            options=streaming_options(stress_options()),
        )
        assert summary.plugins == MINI.plugin_count
        assert summary.findings == MINI.expected_findings
        assert summary.findings == len(stream_signatures(sink))
        assert summary.loc > 0 and summary.seconds > 0
        assert summary.spilled_bytes > 0  # eager per-plugin spill ran
        assert summary.peak_cache_bytes <= DEFAULT_MAX_CACHE_BYTES
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["findings"] == MINI.expected_findings

    def test_stream_cache_stays_under_byte_cap(self, tmp_path):
        cap = 1_000_000
        summary = stream_scan(
            iter_stress_plugins(MINI),
            str(tmp_path / "findings.jsonl"),
            options=streaming_options(stress_options()),
            max_cache_bytes=cap,
        )
        assert summary.peak_cache_bytes <= cap
        assert summary.findings == MINI.expected_findings  # unaffected

    def test_spill_tokens_drops_tokens_not_findings(self):
        plugin = next(iter_stress_plugins(MINI))
        spilled = PluginModel.build(plugin, spill_tokens=True)
        assert all(not fm.tokens for fm in spilled.files.values())
        kept = PluginModel.build(plugin)
        assert any(fm.tokens for fm in kept.files.values())
        base = PhpSafe(options=PhpSafeOptions(), use_process_cache=False)
        spilling = PhpSafe(
            options=PhpSafeOptions(spill_tokens=True), use_process_cache=False
        )
        assert finding_signatures([base.analyze(plugin)]) == finding_signatures(
            [spilling.analyze(plugin)]
        )

    def test_streaming_accumulating_parity_paper_corpus(self, tmp_path):
        # fast tier-1 parity on the paper corpus; the scale-smoke CI job
        # and `bench scale` re-prove this at scale 0.25 (acceptance)
        corpus = build_corpus("2012", scale=0.05)
        tool = PhpSafe(options=PhpSafeOptions(), use_process_cache=False)
        accumulated = finding_signatures(
            [tool.analyze(plugin) for plugin in corpus.plugins]
        )
        sink = str(tmp_path / "stream.jsonl")
        stream_scan(iter(corpus.plugins), sink, options=streaming_options())
        assert stream_signatures(sink) == accumulated
        assert accumulated  # the corpus seeds real findings

    def test_streaming_parity_on_stress_shapes(self, tmp_path):
        plugins = list(iter_stress_plugins(MINI))
        tool = PhpSafe(options=stress_options(), use_process_cache=False)
        accumulated = finding_signatures(
            [tool.analyze(plugin) for plugin in plugins]
        )
        sink = str(tmp_path / "stream.jsonl")
        stream_scan(
            iter(plugins), sink, options=streaming_options(stress_options())
        )
        assert stream_signatures(sink) == accumulated


class TestBenchScaleGate:
    def test_check_scale_passes_on_good_document(self):
        from repro.benchscale import check_scale

        data = {
            "current": {
                "tiers": {
                    "scale-smoke": {
                        "rss_bound_mb": 512,
                        "expected_findings": 240,
                        "streaming": {"peak_rss_mb": 200.0, "findings": 240},
                        "accumulating": {"peak_rss_mb": 600.0, "findings": 240},
                        "streaming_within_bound": True,
                        "accumulating_within_bound": False,
                    }
                },
                "parity": {"identical": True},
            }
        }
        assert check_scale(data) == []

    def test_check_scale_fails_on_bound_breach_and_divergence(self):
        from repro.benchscale import check_scale

        data = {
            "current": {
                "tiers": {
                    "scale-smoke": {
                        "rss_bound_mb": 512,
                        "expected_findings": 240,
                        "streaming": {"peak_rss_mb": 700.0, "findings": 239},
                        "accumulating": {"peak_rss_mb": 600.0, "findings": 240},
                        "streaming_within_bound": False,
                        "accumulating_within_bound": False,
                    }
                },
                "parity": {"identical": False},
            }
        }
        failures = check_scale(data)
        assert len(failures) == 5
        assert check_scale({"current": {}}) == ["no tiers benched"]

    def test_cli_accepts_bench_scale_and_stream_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["bench", "scale", "--tiers", "scale-smoke", "--quick"]
        )
        assert args.action == "scale" and args.tiers == ["scale-smoke"]
        args = parser.parse_args(
            ["scan", "x", "--stream", "out.jsonl", "--max-cache-bytes", "1000"]
        )
        assert args.stream == "out.jsonl" and args.max_cache_bytes == 1000

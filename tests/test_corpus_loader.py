"""Round-trip tests for corpus disk persistence."""

import pytest

from repro.core import PhpSafe
from repro.corpus import build_corpus, load_corpus, save_corpus
from repro.evaluation import evaluate_version


@pytest.fixture(scope="module")
def roundtripped(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("corpus"))
    original = build_corpus("2012", scale=0.02)
    version_dir = save_corpus(original, root)
    return original, load_corpus(version_dir)


class TestRoundTrip:
    def test_plugin_set_preserved(self, roundtripped):
        original, loaded = roundtripped
        assert {p.name for p in loaded.plugins} == {p.name for p in original.plugins}

    def test_file_contents_preserved(self, roundtripped):
        original, loaded = roundtripped
        for plugin in original.plugins:
            other = loaded.plugin(plugin.name)
            assert other.files == plugin.files, plugin.name

    def test_truth_preserved(self, roundtripped):
        original, loaded = roundtripped
        original_ids = {e.spec.spec_id for e in original.truth.entries}
        loaded_ids = {e.spec.spec_id for e in loaded.truth.entries}
        assert original_ids == loaded_ids
        assert loaded.truth.vulnerable_count() == original.truth.vulnerable_count()

    def test_lookup_works_after_reload(self, roundtripped):
        original, loaded = roundtripped
        entry = original.truth.entries[0]
        reloaded = loaded.truth.lookup(
            entry.plugin, entry.spec.kind.value, entry.file, entry.line
        )
        assert reloaded is not None
        assert reloaded.spec.spec_id == entry.spec.spec_id

    def test_evaluation_identical_on_loaded_corpus(self, roundtripped):
        """The headline property: evaluating the on-disk corpus gives the
        same phpSAFE confusion counts as the in-memory one."""
        original, loaded = roundtripped
        in_memory = evaluate_version(original, [PhpSafe()])
        from_disk = evaluate_version(loaded, [PhpSafe()])
        assert (
            from_disk.confusion("phpSAFE").tp
            == in_memory.confusion("phpSAFE").tp
        )
        assert (
            from_disk.confusion("phpSAFE").fp
            == in_memory.confusion("phpSAFE").fp
        )

"""Ablation of phpSAFE's design choices (experiment A1).

Each feature flag removes one capability the paper credits for
phpSAFE's performance; each test verifies the capability's signature
flow is found with the flag on and missed with it off.
"""

from repro.config import generic_php
from repro.core import PhpSafe, PhpSafeOptions
from repro.config.vulnerability import VulnKind

from tests.helpers import findings_of

WPDB_FLOW = "<?php $r = $wpdb->get_var('SELECT x'); echo $r;"
PROPERTY_FLOW = (
    "<?php class W { public $d;"
    " public function a() { $this->d = $_GET['x']; }"
    " public function b() { echo $this->d; } }"
)
UNCALLED_FLOW = "<?php function hook() { echo $_POST['v']; }"
WP_SOURCE_FLOW = "<?php $v = get_option('k'); echo $v;"
WP_FILTER_FLOW = "<?php echo esc_html($_GET['x']);"
PLAIN_FLOW = "<?php echo $_GET['x'];"


def found(source, tool):
    return bool(findings_of(source, tool))


class TestOopFlag:
    def test_on_finds_wpdb_and_properties(self):
        tool = PhpSafe()
        assert found(WPDB_FLOW, tool)
        assert found(PROPERTY_FLOW, tool)

    def test_off_misses_oop_only(self):
        tool = PhpSafe(options=PhpSafeOptions(oop=False))
        assert not found(WPDB_FLOW, tool)
        assert not found(PROPERTY_FLOW, tool)
        assert found(PLAIN_FLOW, tool)  # procedural capability intact


class TestUncalledFlag:
    def test_off_misses_entry_points(self):
        tool = PhpSafe(options=PhpSafeOptions(analyze_uncalled=False))
        assert not found(UNCALLED_FLOW, tool)
        assert found(PLAIN_FLOW, tool)

    def test_on_finds_entry_points(self):
        assert found(UNCALLED_FLOW, PhpSafe())


class TestWordpressConfigFlag:
    def test_off_misses_wp_sources(self):
        tool = PhpSafe(options=PhpSafeOptions(wordpress_config=False))
        assert not found(WP_SOURCE_FLOW, tool)
        assert not found(WPDB_FLOW, tool)

    def test_off_keeps_generic_php(self):
        tool = PhpSafe(options=PhpSafeOptions(wordpress_config=False))
        assert found(PLAIN_FLOW, tool)

    def test_off_does_not_fp_on_wp_filters(self):
        # without WP config, esc_html is unknown and unknown calls are
        # trusted (phpSAFE's unknown-call policy) — still no FP
        tool = PhpSafe(options=PhpSafeOptions(wordpress_config=False))
        assert not found(WP_FILTER_FLOW, tool)

    def test_explicit_profile_overrides_flag(self):
        tool = PhpSafe(profile=generic_php())
        assert not found(WP_SOURCE_FLOW, tool)


class TestSummariesFlag:
    def test_off_is_slower_but_equivalent(self):
        source = (
            "<?php function s($v) { echo $v; }"
            "s($_GET['a']); s($_GET['b']); s('clean');"
        )
        with_summaries = findings_of(source, PhpSafe())
        without = findings_of(
            source, PhpSafe(options=PhpSafeOptions(use_summaries=False))
        )
        assert {f.key for f in with_summaries} == {f.key for f in without}


class TestCombinedAblation:
    def test_fully_ablated_equals_generic_procedural_tool(self):
        """All flags off ≈ a generic procedural analyzer (RIPS-like
        reach on OOP, minus its unknown-call pessimism)."""
        tool = PhpSafe(
            options=PhpSafeOptions(
                oop=False, analyze_uncalled=False, wordpress_config=False
            )
        )
        assert found(PLAIN_FLOW, tool)
        for flow in (WPDB_FLOW, PROPERTY_FLOW, UNCALLED_FLOW, WP_SOURCE_FLOW):
            assert not found(flow, tool)

    def test_sqli_kind_via_wpdb_needs_both_oop_and_config(self):
        flow = "<?php $wpdb->query('D WHERE i=' . $_GET['x']);"
        assert any(
            f.kind is VulnKind.SQLI for f in findings_of(flow, PhpSafe())
        )
        for options in (
            PhpSafeOptions(oop=False),
            PhpSafeOptions(wordpress_config=False),
        ):
            assert not findings_of(flow, PhpSafe(options=options))

"""Tests for the dynamic exploit-confirmation harness."""

from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe
from repro.dynamic import (
    ExploitConfirmer,
    Status,
    build_attack_runtime,
    confirm_findings,
    make_payload,
)
from repro.plugin import Plugin


def analyzed(source):
    plugin = Plugin(name="t", files={"t.php": source})
    return plugin, PhpSafe().analyze(plugin).findings


class TestPayloads:
    def test_unique_markers(self):
        one = make_payload(VulnKind.XSS)
        two = make_payload(VulnKind.XSS)
        assert one.marker != two.marker

    def test_xss_raw_vs_escaped(self):
        payload = make_payload(VulnKind.XSS)
        assert payload.appears_raw_in(f"<div>{payload.text}</div>")
        escaped = payload.text.replace("<", "&lt;").replace(">", "&gt;")
        assert not payload.appears_raw_in(f"<div>{escaped}</div>")

    def test_sqli_raw_vs_escaped(self):
        payload = make_payload(VulnKind.SQLI)
        assert payload.appears_raw_in(f"SELECT x WHERE id = '{payload.text}'")
        slashed = payload.text.replace("'", "\\'")
        assert not payload.appears_raw_in(f"SELECT x WHERE id = '{slashed}'")

    def test_cmdi_raw_vs_quoted(self):
        payload = make_payload(VulnKind.CMDI)
        assert payload.appears_raw_in(f"ping {payload.text}")
        assert not payload.appears_raw_in(f"ping '{payload.text}'")

    def test_lfi(self):
        payload = make_payload(VulnKind.LFI)
        assert payload.appears_raw_in(payload.text + ".php")
        assert not payload.appears_raw_in("templates/header.php")


class TestAttackRuntime:
    def test_superglobals_return_payload(self):
        interp = build_attack_runtime("PAY")
        interp.load_source("<?php echo $_GET['a'] . $_POST['b'] . $_COOKIE['c'];")
        interp.run_file("input.php")
        assert interp.effects.page == "PAYPAYPAY"

    def test_wpdb_rows_are_payload(self):
        interp = build_attack_runtime("PAY")
        interp.load_source(
            "<?php $rows = $wpdb->get_results('SELECT 1');"
            "foreach ($rows as $r) { echo $r->whatever_column; }"
        )
        interp.run_file("input.php")
        assert "PAY" in interp.effects.page
        assert interp.effects.queries == ["SELECT 1"]

    def test_wpdb_prepare_escapes(self):
        interp = build_attack_runtime("a'b")
        interp.load_source(
            "<?php $wpdb->query($wpdb->prepare('SELECT %s', $_GET['x']));"
        )
        interp.run_file("input.php")
        assert "a\\'b" in interp.effects.queries[0]

    def test_guards_follow_threat_model(self):
        source = "<?php if (current_user_can('admin')) { echo 'in'; } else { echo 'out'; }"
        anonymous = build_attack_runtime("PAY")
        anonymous.load_source(source)
        anonymous.run_file("input.php")
        assert anonymous.effects.page == "out"  # unauthenticated attacker
        insider = build_attack_runtime("PAY", privileged=True)
        insider.load_source(source)
        insider.run_file("input.php")
        assert insider.effects.page == "in"

    def test_file_reads_are_payload(self):
        interp = build_attack_runtime("PAY")
        interp.load_source("<?php $fp = fopen('x', 'r'); echo fgets($fp);")
        interp.run_file("input.php")
        assert interp.effects.page == "PAY"


class TestConfirmation:
    def test_reflected_xss_confirmed(self):
        plugin, findings = analyzed("<?php echo '<p>' . $_GET['m'] . '</p>';")
        verdicts = confirm_findings(plugin, findings)
        assert verdicts and verdicts[0].confirmed
        assert "page output" in verdicts[0].evidence

    def test_escaped_flow_not_reported_hence_nothing_to_confirm(self):
        plugin, findings = analyzed("<?php echo htmlentities($_GET['m']);")
        assert not findings

    def test_stored_xss_via_wpdb_confirmed(self):
        plugin, findings = analyzed(
            "<?php $rows = $wpdb->get_results('SELECT * FROM t');"
            "foreach ($rows as $r) { echo '<td>' . $r->name . '</td>'; }"
        )
        verdicts = confirm_findings(plugin, findings)
        assert verdicts and verdicts[0].confirmed

    def test_sqli_confirmed(self):
        plugin, findings = analyzed(
            "<?php $wpdb->query(\"D WHERE id = '\" . $_GET['id'] . \"'\");"
        )
        verdicts = confirm_findings(plugin, findings)
        assert verdicts and verdicts[0].confirmed
        assert "SQL query log" in verdicts[0].evidence

    def test_uncalled_function_flow_confirmed_by_driving(self):
        plugin, findings = analyzed(
            "<?php function hook_cb() { echo '<b>' . $_POST['v'] . '</b>'; }"
        )
        verdicts = confirm_findings(plugin, findings)
        assert verdicts and verdicts[0].confirmed

    def test_method_flow_confirmed_by_driving(self):
        plugin, findings = analyzed(
            "<?php class W { public $d;"
            " public function collect() { $this->d = $_COOKIE['p']; }"
            " public function render() { echo $this->d; } }"
        )
        verdicts = confirm_findings(plugin, findings)
        assert verdicts and verdicts[0].confirmed

    def test_false_positive_bait_not_confirmed(self):
        """The in_array-whitelisted ORDER BY: phpSAFE flags it (FP), the
        dynamic check shows the whitelist stops the payload."""
        plugin, findings = analyzed(
            "<?php $col = $_GET['s'];"
            "if (!in_array($col, array('title', 'date'))) { $col = 'title'; }"
            "$wpdb->query('SELECT id FROM t ORDER BY ' . $col);"
        )
        assert findings  # static FP
        verdicts = confirm_findings(plugin, findings)
        assert verdicts[0].status is Status.UNCONFIRMED

    def test_cmdi_confirmed(self):
        plugin, findings = analyzed("<?php system('ping ' . $_GET['h']);")
        verdicts = confirm_findings(plugin, findings)
        cmdi = [v for v in verdicts if v.finding.kind is VulnKind.CMDI]
        assert cmdi and cmdi[0].confirmed

    def test_escapeshellarg_blocks_confirmation(self):
        plugin, findings = analyzed(
            "<?php some_logger($_GET['x']);"  # keep file non-trivial
            "system('ping ' . escapeshellarg($_GET['h']));"
        )
        cmdi = [f for f in findings if f.kind is VulnKind.CMDI]
        assert not cmdi  # static already silent; dynamic agrees:
        interp_plugin = Plugin(
            name="t2",
            files={"t.php": "<?php system('ping ' . escapeshellarg($_GET['h']));"},
        )
        from repro.core.results import Finding

        fake = Finding(kind=VulnKind.CMDI, file="t.php", line=1, sink="system")
        verdict = ExploitConfirmer().confirm(interp_plugin, fake)
        assert verdict.status is Status.UNCONFIRMED

    def test_lfi_confirmed(self):
        plugin, findings = analyzed("<?php include $_GET['page'] . '.php';")
        lfi = [f for f in findings if f.kind is VulnKind.LFI]
        verdicts = confirm_findings(plugin, lfi)
        assert verdicts and verdicts[0].confirmed

    def test_unparseable_file_yields_error(self):
        from repro.core.results import Finding

        plugin = Plugin(name="bad", files={"bad.php": "<?php $a = ;"})
        fake = Finding(kind=VulnKind.XSS, file="bad.php", line=1, sink="echo")
        verdict = ExploitConfirmer().confirm(plugin, fake)
        assert verdict.status is Status.ERROR

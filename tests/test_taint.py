"""Unit and property tests for the taint lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.vulnerability import InputVector, VulnKind
from repro.core.taint import ConcreteSource, ParamRef, PropRef, TaintState


def source(name="$_GET", vector=InputVector.GET, line=1):
    return ConcreteSource(vector=vector, name=name, file="f.php", line=line)


class TestConstruction:
    def test_clean_state(self):
        state = TaintState.clean()
        assert state.is_clean()
        assert not state.is_tainted(VulnKind.XSS)

    def test_from_label_all_kinds(self):
        state = TaintState.from_label(source())
        assert state.is_tainted(VulnKind.XSS)
        assert state.is_tainted(VulnKind.SQLI)

    def test_from_label_single_kind(self):
        state = TaintState.from_label(source(), kinds={VulnKind.XSS})
        assert state.is_tainted(VulnKind.XSS)
        assert not state.is_tainted(VulnKind.SQLI)

    def test_states_are_immutable_values(self):
        # hash-consed representation: label sets are frozen, so a state
        # can be shared freely (copy() is the identity)
        state = TaintState.from_label(source())
        assert state.copy() is state
        with pytest.raises(AttributeError):
            state.active[VulnKind.XSS].clear()
        with pytest.raises(TypeError):
            state.active[VulnKind.XSS] = frozenset()
        assert state.is_tainted(VulnKind.XSS)

    def test_equal_states_are_interned_to_one_object(self):
        one = TaintState.from_label(source())
        two = TaintState(active={kind: {source()} for kind in VulnKind})
        assert one is two
        assert TaintState.clean() is TaintState()


class TestJoin:
    def test_join_accumulates_labels(self):
        get = TaintState.from_label(source("$_GET"))
        post = TaintState.from_label(source("$_POST", InputVector.POST))
        joined = get.joined(post)
        assert len(joined.labels(VulnKind.XSS)) == 2

    def test_join_preserves_operands(self):
        get = TaintState.from_label(source())
        post = TaintState.from_label(source("$_POST", InputVector.POST))
        joined = get.joined(post)
        assert joined is not get and joined is not post
        assert len(get.labels(VulnKind.XSS)) == 1
        assert len(post.labels(VulnKind.XSS)) == 1

    def test_vectors_sorted_and_deduped(self):
        state = TaintState.from_label(source(line=1)).joined(
            TaintState.from_label(source(line=2))
        )
        assert state.vectors(VulnKind.XSS) == (InputVector.GET,)


class TestFilterAndRevert:
    def test_filter_one_kind(self):
        state = TaintState.from_label(source()).filtered({VulnKind.XSS})
        assert not state.is_tainted(VulnKind.XSS)
        assert state.is_tainted(VulnKind.SQLI)

    def test_revert_restores_filtered(self):
        state = TaintState.from_label(source()).filtered({VulnKind.XSS})
        restored = state.reverted({VulnKind.XSS})
        assert restored.is_tainted(VulnKind.XSS)

    def test_revert_without_filter_is_noop(self):
        state = TaintState.from_label(source()).reverted({VulnKind.XSS})
        assert len(state.labels(VulnKind.XSS)) == 1

    def test_filter_then_join_keeps_suppressed(self):
        filtered = TaintState.from_label(source()).filtered({VulnKind.XSS})
        joined = filtered.joined(TaintState.clean())
        assert joined.reverted({VulnKind.XSS}).is_tainted(VulnKind.XSS)


class TestSubstitution:
    def test_param_ref_substituted(self):
        ref = ParamRef("f", 0)
        state = TaintState.from_label(ref)
        actual = TaintState.from_label(source())
        result = state.substituted({ref: actual})
        assert result.is_tainted(VulnKind.XSS)
        assert all(
            isinstance(label, ConcreteSource) for label in result.labels(VulnKind.XSS)
        )

    def test_unmapped_placeholder_dropped(self):
        state = TaintState.from_label(ParamRef("f", 0))
        assert state.substituted({}).is_clean()

    def test_concrete_labels_pass_through(self):
        state = TaintState.from_label(source())
        assert state.substituted({}).is_tainted(VulnKind.XSS)

    def test_kind_restriction_respected(self):
        ref = ParamRef("f", 0)
        state = TaintState.from_label(ref, kinds={VulnKind.SQLI})
        actual = TaintState.from_label(source(), kinds={VulnKind.SQLI})
        result = state.substituted({ref: actual})
        assert result.is_tainted(VulnKind.SQLI)
        assert not result.is_tainted(VulnKind.XSS)

    def test_has_placeholders(self):
        assert TaintState.from_label(PropRef("c", "p")).has_placeholders()
        assert not TaintState.from_label(source()).has_placeholders()


# ---- property tests -------------------------------------------------------

labels = st.one_of(
    st.builds(
        ConcreteSource,
        vector=st.sampled_from(list(InputVector)),
        name=st.sampled_from(["$_GET", "$_POST", "fgets()"]),
        file=st.just("f.php"),
        line=st.integers(min_value=1, max_value=99),
    ),
    st.builds(ParamRef, function_key=st.sampled_from(["f", "g"]), index=st.integers(0, 3)),
    st.builds(PropRef, class_name=st.sampled_from(["a", "b"]), prop=st.sampled_from(["p", "q"])),
)

states = st.lists(labels, max_size=4).map(
    lambda items: TaintState(
        active={kind: set(items) for kind in VulnKind} if items else {}
    )
)


@given(states, states)
def test_join_commutative_on_labels(left, right):
    one = left.joined(right)
    other = right.joined(left)
    for kind in VulnKind:
        assert one.labels(kind) == other.labels(kind)


@given(states, states, states)
def test_join_associative_on_labels(a, b, c):
    one = a.joined(b).joined(c)
    other = a.joined(b.joined(c))
    for kind in VulnKind:
        assert one.labels(kind) == other.labels(kind)


@given(states)
def test_join_idempotent(state):
    joined = state.joined(state)
    for kind in VulnKind:
        assert joined.labels(kind) == state.labels(kind)


@given(states)
def test_filter_monotone_decreasing(state):
    filtered = state.filtered({VulnKind.XSS})
    assert filtered.labels(VulnKind.XSS) <= state.labels(VulnKind.XSS)
    assert filtered.labels(VulnKind.SQLI) == state.labels(VulnKind.SQLI)


@given(states)
def test_filter_then_revert_identity_on_active(state):
    """filter;revert restores exactly the active labels."""
    roundtrip = state.filtered(list(VulnKind)).reverted(list(VulnKind))
    for kind in VulnKind:
        assert roundtrip.labels(kind) == state.labels(kind)


@given(states)
def test_substitute_empty_leaves_only_concrete(state):
    result = state.substituted({})
    for kind in VulnKind:
        assert all(isinstance(label, ConcreteSource) for label in result.labels(kind))
        concrete = {
            label for label in state.labels(kind) if isinstance(label, ConcreteSource)
        }
        assert result.labels(kind) == concrete


@given(states)
def test_signature_equal_for_copies(state):
    assert state.copy().signature() == state.signature()

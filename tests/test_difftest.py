"""Differential harness: regression fixes, config-matrix oracle, slices."""

from repro.batch import BatchOptions, BatchScanner, ToolSpec
from repro.config.vulnerability import VulnKind
from repro.core.phpsafe import PhpSafe, PhpSafeOptions
from repro.core.results import finding_signatures
from repro.corpus.generator import build_corpus
from repro.difftest import (
    SLICES,
    ConfigMatrixOracle,
    OracleOptions,
    diff_signatures,
    pack_enabled_phpsafe,
    render_oracle_reports,
    render_slice_table,
    run_slices,
)
from repro.evaluation.runner import evaluate_version, run_tool
from repro.incidents import IncidentSeverity, IncidentStage
from repro.php import parse_source, print_file

from tests.helpers import analyze, findings_of


def xss(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


class TestCoalesceFix:
    """`??` used to be a parse error silently dropped in recover mode."""

    def test_coalesce_taints_result(self):
        assert xss("<?php $x = $_GET['x'] ?? 'd'; echo $x;")

    def test_coalesce_no_parse_incident(self):
        report = analyze("<?php $x = $_GET['x'] ?? 'd'; echo $x;")
        assert not report.incidents

    def test_coalesce_strict_mode_agrees(self):
        strict = PhpSafe(options=PhpSafeOptions(recover=False))
        assert xss("<?php $x = $_GET['x'] ?? 'd'; echo $x;", strict)

    def test_coalesce_assign_operator(self):
        assert xss("<?php $x = $_GET['x']; $x ??= 'd'; echo $x;")

    def test_coalesce_right_operand_taints(self):
        assert xss("<?php $x = 'd' ?? $_GET['x']; echo $x;")

    def test_clean_coalesce_stays_clean(self):
        assert not xss("<?php $x = 'a' ?? 'd'; echo $x;")

    def test_coalesce_is_right_associative(self):
        tree = parse_source("<?php $q = $a ?? $b ?? $c;")
        assignment = tree.statements[0].expr
        assert assignment.value.op == "??"
        assert assignment.value.right.op == "??"

    def test_printer_round_trip(self):
        for source in (
            "<?php $x = $_GET['x'] ?? 'd'; echo $x;",
            "<?php $x ??= $y ?? 'w';",
        ):
            once = print_file(parse_source(source))
            assert "??" in once
            assert print_file(parse_source(once)) == once


class TestReferenceAliasFix:
    """`$b =& $a` used to create no alias — writes never propagated."""

    def test_write_to_source_reaches_alias(self):
        assert xss("<?php $a = 1; $b =& $a; $a = $_GET['x']; echo $b;")

    def test_write_to_alias_reaches_source(self):
        assert xss("<?php $a = 1; $b =& $a; $b = $_GET['x']; echo $a;")

    def test_alias_of_tainted_is_tainted(self):
        assert xss("<?php $a = $_GET['x']; $b =& $a; echo $b;")

    def test_alias_group_of_three(self):
        assert xss(
            "<?php $a = 1; $b =& $a; $c =& $b; $a = $_GET['x']; echo $c;"
        )

    def test_clean_alias_stays_clean(self):
        assert not xss("<?php $a = 'safe'; $b =& $a; $a = 'still'; echo $b;")


class TestStaticLocalFix:
    """`static $s` used to lose taint between calls."""

    def test_taint_persists_across_calls(self):
        assert xss(
            "<?php function f(){ static $s; echo $s; $s = $_GET['x']; } f(); f();"
        )

    def test_static_with_default_persists(self):
        assert xss(
            "<?php function f(){ static $s = ''; echo $s; $s = $_GET['x']; } f(); f();"
        )

    def test_clean_static_stays_clean(self):
        assert not xss(
            "<?php function f(){ static $s = 'a'; echo $s; $s = 'b'; } f(); f();"
        )

    def test_static_summary_not_persisted_to_cache(self):
        source = "<?php function f(){ static $s; $s = $_GET['x']; echo $s; } f();"
        from repro.batch.diskcache import DiskModelCache

        import tempfile

        with tempfile.TemporaryDirectory() as cache_dir:
            tool = PhpSafe(cache=DiskModelCache(cache_dir))
            tool.analyze_source(source)
            assert tool.cache.summary_stats.stores == 0


class TestStrictRecoverProperty:
    """Recover-mode findings equal strict-mode findings on every
    cleanly-parseable corpus file — the invariant the `??` bug broke."""

    def test_corpus_findings_agree(self):
        corpus = build_corpus("2012", scale=0.02)
        strict_tool = PhpSafe(options=PhpSafeOptions(recover=False))
        recover_tool = PhpSafe(options=PhpSafeOptions(recover=True))
        for plugin in corpus.plugins:
            for path, source in plugin.files.items():
                try:
                    parse_source(source, filename=path)
                except Exception:
                    continue  # not cleanly parseable: strict may drop it
                strict = finding_signatures([strict_tool.analyze_source(source, path)])
                recover = finding_signatures(
                    [recover_tool.analyze_source(source, path)]
                )
                assert strict == recover, f"divergence in {plugin.name}/{path}"


class TestDivergenceModel:
    def test_diff_signatures_typed_records(self):
        left = {("p", "xss", "a.php", 3, "echo")}
        right = {("p", "xss", "a.php", 3, "echo"), ("p", "sqli", "b.php", 7, "mysql_query")}
        divergences = diff_signatures("jobs", "jobs=1", "jobs=4", left, right)
        assert len(divergences) == 1
        divergence = divergences[0]
        assert divergence.axis == "jobs"
        assert divergence.side == "right-only"
        assert divergence.kind == "sqli"
        assert divergence.line == 7
        assert "jobs=4" in divergence.describe()

    def test_divergence_to_incident(self):
        divergence = diff_signatures(
            "cache", "cold", "warm", {("p", "xss", "a.php", 3, "echo")}, set()
        )[0]
        incident = divergence.to_incident()
        assert incident.stage is IncidentStage.DIFF
        assert incident.severity is IncidentSeverity.ERROR
        assert incident.unit == "p"

    def test_identical_sets_no_divergence(self):
        sigs = {("p", "xss", "a.php", 3, "echo")}
        assert diff_signatures("recover", "strict", "recover", sigs, set(sigs)) == []


class TestConfigMatrixOracle:
    def test_zero_divergences_on_small_corpus(self):
        oracle = ConfigMatrixOracle(
            OracleOptions(versions=("2012",), scale=0.02, jobs=2)
        )
        reports = oracle.run()
        assert len(reports) == 1
        report = reports[0]
        assert {outcome.axis for outcome in report.axes} == {
            "recover",
            "cache",
            "jobs",
            "summaries",
            "incremental",
            "ir",
        }
        assert report.ok, render_oracle_reports(reports, verbose=True)
        # the corpus plants vulnerabilities, so an empty set would mean
        # the oracle compared nothing
        assert all(outcome.left_count > 0 for outcome in report.axes)

    def test_render_mentions_every_axis(self):
        oracle = ConfigMatrixOracle(
            OracleOptions(versions=("2012",), scale=0.02, jobs=2)
        )
        rendered = render_oracle_reports(oracle.run())
        for axis in ("recover", "summaries", "jobs", "cache", "incremental", "ir"):
            assert axis in rendered


class TestSliceCatalog:
    def test_catalog_is_large_and_deterministic(self):
        assert len(SLICES) >= 60
        assert len({piece.name for piece in SLICES}) == len(SLICES)
        for piece in SLICES:
            assert piece.code.startswith("<?php")

    def test_reference_envelope_matches_expectations(self):
        results = run_slices(tools=[pack_enabled_phpsafe()])
        mismatches = [
            f"{r.slice.name}: expected {sorted(r.slice.expected)},"
            f" got {sorted(r.reference_kinds)}"
            for r in results
            if not r.ok
        ]
        assert not mismatches, "\n".join(mismatches)

    def test_bug_slices_present(self):
        names = {piece.name for piece in SLICES}
        assert {"coalesce", "ref-alias-write", "static-local"} <= names

    def test_slice_table_renders(self):
        results = run_slices(tools=[PhpSafe()], slices=SLICES[:3])
        table = render_slice_table(results)
        assert SLICES[0].name in table
        assert "phpSAFE" in table


class TestCaptureHooks:
    def test_batch_result_finding_signatures(self):
        corpus = build_corpus("2012", scale=0.02)
        scanner = BatchScanner(ToolSpec(name="phpsafe"), BatchOptions(jobs=1))
        result = scanner.scan(corpus.plugins[:2])
        signatures = result.finding_signatures()
        assert signatures == finding_signatures(result.reports)

    def test_runner_report_hook_captures_reports(self):
        corpus = build_corpus("2012", scale=0.02)
        captured = {}
        evaluate_version(
            corpus,
            [PhpSafe()],
            report_hook=lambda tool, reports: captured.setdefault(tool, reports),
        )
        assert "phpSAFE" in captured
        assert len(captured["phpSAFE"]) == len(corpus.plugins)

    def test_run_tool_serial_and_batch_agree(self):
        corpus = build_corpus("2012", scale=0.02)
        plugins = corpus.plugins[:3]
        serial, _ = run_tool(PhpSafe(), plugins)
        parallel, _ = run_tool(PhpSafe(), plugins, jobs=2)
        assert finding_signatures(serial) == finding_signatures(parallel)


class TestSwitchFallthrough:
    def test_fallthrough_carries_taint(self):
        assert xss(
            "<?php $x = 'a'; switch ($_GET['c']) {"
            "case 1: $x = $_GET['a'];"
            "case 2: echo $x; }"
        )

    def test_default_case_still_joins(self):
        assert xss(
            "<?php $x = 'safe'; switch ($m) {"
            "case 1: $x = 'ok'; break;"
            "default: $x = $_GET['v']; } echo $x;"
        )

"""Tests for markup-context analysis (context-sensitive XSS)."""

import pytest

from repro.core import PhpSafe
from repro.php.htmlcontext import MarkupContext, context_at_end, sanitizer_for


class TestStateMachine:
    @pytest.mark.parametrize(
        "markup,expected",
        [
            ("", MarkupContext.HTML_TEXT),
            ("<p>Hello ", MarkupContext.HTML_TEXT),
            ("<div><span>x</span>", MarkupContext.HTML_TEXT),
            ('<input value="', MarkupContext.ATTRIBUTE),
            ("<input value='", MarkupContext.ATTRIBUTE),
            ('<a href="', MarkupContext.URL_ATTRIBUTE),
            ('<img src="', MarkupContext.URL_ATTRIBUTE),
            ('<form action="', MarkupContext.URL_ATTRIBUTE),
            ("<b class=", MarkupContext.ATTRIBUTE_UNQUOTED),
            ("<script>var a = ", MarkupContext.SCRIPT),
            ("<script type='text/javascript'>f(", MarkupContext.SCRIPT),
            ("<style>.x { color: ", MarkupContext.STYLE),
            ("<!-- note ", MarkupContext.COMMENT),
            ("<div ", MarkupContext.TAG),
            ('<div id="a" ', MarkupContext.TAG),
            ('<div onclick="go(', MarkupContext.SCRIPT),  # event handler
        ],
    )
    def test_context_detection(self, markup, expected):
        assert context_at_end(markup) is expected

    def test_closed_contexts_return_to_text(self):
        assert context_at_end('<input value="x">') is MarkupContext.HTML_TEXT
        assert context_at_end("<script>f();</script>") is MarkupContext.HTML_TEXT
        assert context_at_end("<!-- c -->") is MarkupContext.HTML_TEXT

    def test_attribute_closes_back_to_tag(self):
        assert context_at_end('<a href="x" title="') is MarkupContext.ATTRIBUTE

    def test_script_not_fooled_by_less_than(self):
        assert context_at_end("<script>if (a < b) {") is MarkupContext.SCRIPT

    def test_sanitizer_recommendations(self):
        assert sanitizer_for("<p>") == "esc_html"
        assert sanitizer_for('<input value="') == "esc_attr"
        assert sanitizer_for('<a href="') == "esc_url"
        assert sanitizer_for("<script>x(") == "esc_js"


class TestEngineIntegration:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("<?php echo '<p>' . $_GET['a'] . '</p>';", "html"),
            ("<?php echo '<input value=\"' . $_GET['a'] . '\">';", "attribute"),
            ("<?php echo '<a href=\"' . $_GET['a'] . '\">';", "url"),
            ("<?php echo '<script>v(' . $_GET['a'] . ')</script>';", "script"),
            ("<?php echo $_GET['a'];", "html"),
        ],
    )
    def test_findings_carry_context(self, source, expected):
        finding = PhpSafe().analyze_source(source).findings[0]
        assert finding.markup_context == expected

    def test_interpolated_string_context(self):
        source = '<?php $u = $_GET[\'u\']; echo "<a href=\\"$u\\">";'
        finding = PhpSafe().analyze_source(source).findings[0]
        assert finding.markup_context == "url"

    def test_context_through_variable_prefix(self):
        # prefix built in a variable: the engine only sees the sink
        # expression, so the context falls back to the default
        source = "<?php $p = '<b>'; echo $p . $_GET['a'];"
        finding = PhpSafe().analyze_source(source).findings[0]
        assert finding.markup_context in ("html", "")

    def test_non_xss_findings_have_no_context(self):
        source = "<?php mysql_query('Q' . $_GET['a']);"
        finding = PhpSafe().analyze_source(source).findings[0]
        assert finding.markup_context == ""

    def test_fix_hint_uses_context(self):
        from repro.core.review import fix_hint

        finding = PhpSafe().analyze_source(
            "<?php echo '<a href=\"' . $_GET['u'] . '\">';"
        ).findings[0]
        assert "esc_url()" in fix_hint(finding)

    def test_autofix_uses_context_sanitizer(self):
        from repro.core.autofix import apply_fixes
        from repro.plugin import Plugin

        plugin = Plugin(
            name="t",
            files={"t.php": "<?php echo '<input value=\"' . $_GET['v'] . '\">';"},
        )
        report = PhpSafe().analyze(plugin)
        patched, _proposals = apply_fixes(plugin, report.findings)
        assert "esc_attr(" in patched.files["t.php"]
        assert not PhpSafe().analyze(patched).findings

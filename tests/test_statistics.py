"""Tests for the evaluation statistics (bootstrap CIs, McNemar)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.statistics import (
    Interval,
    bootstrap_rate,
    compare_tools,
    pairwise_comparisons,
    tool_intervals,
)


class TestBootstrap:
    def test_point_estimate(self):
        interval = bootstrap_rate(80, 100)
        assert interval.point == 0.8
        assert interval.contains(0.8)

    def test_deterministic(self):
        assert bootstrap_rate(30, 60) == bootstrap_rate(30, 60)

    def test_zero_total(self):
        interval = bootstrap_rate(0, 0)
        assert interval.point == interval.low == interval.high == 0.0

    def test_certainty_at_extremes(self):
        full = bootstrap_rate(50, 50)
        assert full.low == full.high == 1.0
        empty = bootstrap_rate(0, 50)
        assert empty.low == empty.high == 0.0

    def test_larger_samples_tighter(self):
        small = bootstrap_rate(8, 10)
        large = bootstrap_rate(800, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_str_formatting(self):
        text = str(Interval(point=0.83, low=0.79, high=0.87))
        assert text.startswith("83.0%") and "[" in text


@given(st.integers(0, 200), st.integers(0, 200))
def test_bootstrap_bounds_property(successes, extra):
    total = successes + extra
    interval = bootstrap_rate(successes, total, resamples=200)
    assert 0.0 <= interval.low <= interval.high <= 1.0
    if total:
        assert interval.low <= interval.point <= interval.high


class TestMcNemar:
    def test_counts(self):
        reference = {"a", "b", "c", "d", "e"}
        comparison = compare_tools(
            "X", {"a", "b", "c"}, "Y", {"a"}, reference
        )
        assert comparison.both == 1
        assert comparison.only_a == 2
        assert comparison.only_b == 0
        assert comparison.neither == 2

    def test_identical_tools_not_significant(self):
        reference = {str(i) for i in range(50)}
        detected = {str(i) for i in range(25)}
        comparison = compare_tools("X", detected, "Y", detected, reference)
        assert comparison.p_value == 1.0
        assert not comparison.significant

    def test_dominant_tool_significant(self):
        reference = {str(i) for i in range(100)}
        strong = {str(i) for i in range(90)}
        weak = {str(i) for i in range(10)}
        comparison = compare_tools("strong", strong, "weak", weak, reference)
        assert comparison.significant

    def test_str(self):
        comparison = compare_tools("A", {"x"}, "B", set(), {"x"})
        assert "A vs B" in str(comparison)


class TestOnEvaluation:
    def test_phpsafe_beats_baselines_significantly(self, evaluations):
        for version in ("2012", "2014"):
            comparisons = pairwise_comparisons(
                evaluations[version], ("phpSAFE", "RIPS", "Pixy")
            )
            by_pair = {(c.tool_a, c.tool_b): c for c in comparisons}
            assert by_pair[("phpSAFE", "RIPS")].significant
            assert by_pair[("phpSAFE", "Pixy")].significant
            assert by_pair[("RIPS", "Pixy")].significant

    def test_intervals_bracket_table1(self, evaluations):
        intervals = tool_intervals(evaluations["2012"], "phpSAFE")
        # Table I: precision 83%, recall 80%
        assert intervals["precision"].contains(0.83)
        assert intervals["recall"].contains(0.80)

    def test_precision_intervals_disjoint_phpsafe_pixy(self, evaluations):
        phpsafe = tool_intervals(evaluations["2012"], "phpSAFE")["precision"]
        pixy = tool_intervals(evaluations["2012"], "Pixy")["precision"]
        assert phpsafe.low > pixy.high  # clearly separated

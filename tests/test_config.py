"""Unit tests for the knowledge base (configuration stage)."""

from repro.config import (
    AnalyzerProfile,
    FilterSpec,
    InputVector,
    SinkSpec,
    SourceSpec,
    VulnKind,
    generic_php,
    pixy_2007,
    wordpress,
)
from repro.config.vulnerability import TABLE2_ROWS


class TestInputVector:
    def test_tiers_follow_section_vc(self):
        assert InputVector.GET.tier == 1
        assert InputVector.POST.tier == 1
        assert InputVector.COOKIE.tier == 1
        assert InputVector.DB.tier == 2
        assert InputVector.FILE.tier == 3

    def test_directly_exploitable(self):
        assert InputVector.GET.directly_exploitable
        assert not InputVector.DB.directly_exploitable

    def test_table2_rows(self):
        assert InputVector.POST.table2_row == "POST"
        assert InputVector.COOKIE.table2_row == "POST/GET/COOKIE"
        assert InputVector.REQUEST.table2_row == "POST/GET/COOKIE"
        assert InputVector.FILE.table2_row == "File/Function/Array"
        assert InputVector.FUNCTION.table2_row == "File/Function/Array"
        assert set(TABLE2_ROWS) == {
            v.table2_row for v in InputVector
        }


class TestGenericProfile:
    def test_superglobals_are_sources(self):
        profile = generic_php()
        for name in ("_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER"):
            assert profile.superglobal_source(name) is not None
        assert profile.superglobal_source("not_a_superglobal") is None

    def test_file_and_db_sources(self):
        profile = generic_php()
        assert profile.function_source("fgets").vector is InputVector.FILE
        assert profile.function_source("mysql_fetch_assoc").vector is InputVector.DB

    def test_lookups_case_insensitive(self):
        profile = generic_php()
        assert profile.function_filter("HTMLEntities") is not None
        assert profile.function_sink("MYSQL_QUERY") is not None

    def test_filter_kinds(self):
        profile = generic_php()
        assert profile.function_filter("htmlentities").kinds == frozenset({VulnKind.XSS})
        assert VulnKind.SQLI in profile.function_filter("intval").kinds
        assert profile.function_filter("addslashes").kinds == frozenset({VulnKind.SQLI})

    def test_reverts(self):
        profile = generic_php()
        assert profile.revert("stripslashes") is not None
        assert profile.revert("htmlentities") is None

    def test_sink_kinds_and_args(self):
        profile = generic_php()
        assert profile.function_sink("echo").kind is VulnKind.XSS
        query = profile.function_sink("mysqli_query")
        assert query.kind is VulnKind.SQLI
        assert query.arg_is_sensitive(1)
        assert not query.arg_is_sensitive(0)
        assert profile.function_sink("print_r").arg_is_sensitive(0)

    def test_no_wordpress_knowledge(self):
        profile = generic_php()
        assert profile.function_filter("esc_html") is None
        assert profile.method_source("wpdb", "get_results") is None
        assert profile.known_instance("wpdb") is None


class TestWordpressProfile:
    def test_wpdb_methods(self):
        profile = wordpress()
        assert profile.method_source("wpdb", "get_results") is not None
        assert profile.method_sink("wpdb", "query").kind is VulnKind.SQLI
        assert profile.method_filter("wpdb", "prepare") is not None

    def test_known_instances(self):
        profile = wordpress()
        assert profile.known_instance("wpdb").class_name == "wpdb"

    def test_wp_escaping_functions(self):
        profile = wordpress()
        assert profile.function_filter("esc_html").kinds == frozenset({VulnKind.XSS})
        assert VulnKind.SQLI in profile.function_filter("absint").kinds
        assert profile.function_filter("esc_sql").kinds == frozenset({VulnKind.SQLI})

    def test_wp_sources(self):
        profile = wordpress()
        assert profile.function_source("get_option").vector is InputVector.DB
        assert profile.function_source("get_post_meta") is not None

    def test_includes_generic_entries_too(self):
        profile = wordpress()
        assert profile.function_filter("htmlentities") is not None
        assert profile.superglobal_source("_GET") is not None


class TestPixyProfile:
    def test_register_globals_enabled(self):
        assert pixy_2007().register_globals
        assert not generic_php().register_globals

    def test_no_mysqli_era_functions(self):
        profile = pixy_2007()
        assert profile.function_source("mysqli_fetch_assoc") is None
        assert profile.function_sink("mysqli_query") is None
        assert profile.function_source("mysql_fetch_assoc") is not None

    def test_reduced_filters(self):
        profile = pixy_2007()
        assert profile.function_filter("htmlentities") is not None
        assert profile.function_filter("filter_var") is None

    def test_no_wordpress(self):
        assert pixy_2007().function_filter("esc_html") is None


class TestProfileComposition:
    def test_extended_adds_entries(self):
        base = generic_php()
        drupal = base.extended(
            "drupal",
            sources=[SourceSpec("drupal_get_query", InputVector.GET)],
            filters=[FilterSpec("check_plain", frozenset({VulnKind.XSS}))],
            sinks=[SinkSpec("drupal_render_echo", VulnKind.XSS)],
        )
        assert drupal.function_source("drupal_get_query") is not None
        assert drupal.function_filter("check_plain") is not None
        assert drupal.function_sink("drupal_render_echo") is not None
        # base profile untouched
        assert base.function_source("drupal_get_query") is None

    def test_extended_preserves_base(self):
        drupal = generic_php().extended("drupal")
        assert drupal.function_filter("htmlentities") is not None

    def test_qualified_names(self):
        spec = SourceSpec("get_results", InputVector.DB, class_name="wpdb")
        assert spec.qualified == "wpdb::get_results"
        assert SourceSpec("_GET", InputVector.GET, is_superglobal=True).qualified == "$_GET"

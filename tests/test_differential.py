"""Differential property testing: static analysis vs dynamic execution.

The strongest soundness check available to the reproduction: generate
random small programs from a flow grammar, analyze them statically
(phpSAFE) and execute them dynamically (attack runtime).  Whenever the
*dynamic* run proves the payload reaches the page unsanitized, the
*static* analyzer must have reported the flow — a missed dynamic
confirmation is a real false negative, not a modeling choice.

(The converse is intentionally not asserted: static analysis is allowed
to over-approximate, e.g. it flags a flow through ``strtoupper`` whose
uppercased payload no longer matches the marker.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe
from repro.dynamic import build_attack_runtime, make_payload
from repro.php.interp import PhpRuntimeError

SOURCES = [
    "$_GET['q']",
    "$_POST['q']",
    "$_COOKIE['q']",
    "get_option('k')",
    "$wpdb->get_var('SELECT v')",
]

# (php wrapper, sanitizes XSS fully?)
WRAPPERS = [
    ("htmlentities({})", True),
    ("htmlspecialchars({})", True),
    ("esc_html({})", True),
    ("intval({})", True),
    ("trim({})", False),
    ("strtolower({})", False),
    ("stripslashes({})", False),
    ("{}", False),
]

HOPS = [
    "$a = {src}; $b = $a; $out = $b;",
    "$out = {src};",
    "$tmp = 'x: ' . {src}; $out = $tmp;",
    "$out = 'safe'; if ($_GET['c'] == '1') {{ $out = {src}; }}",
]


@st.composite
def flow_programs(draw):
    source = draw(st.sampled_from(SOURCES))
    wrapper, sanitized = draw(st.sampled_from(WRAPPERS))
    hop = draw(st.sampled_from(HOPS))
    wrapped = wrapper.format(source)
    body = hop.format(src=wrapped)
    program = f"<?php\n{body}\necho '<p>' . $out . '</p>';\n"
    return program, sanitized


@given(flow_programs())
@settings(max_examples=120, deadline=None)
def test_dynamic_exploit_implies_static_finding(case):
    program, _sanitized = case
    payload = make_payload(VulnKind.XSS)
    interp = build_attack_runtime(payload.text)
    interp.load_source(program, "prog.php")
    try:
        interp.run_file("prog.php")
    except PhpRuntimeError:
        return  # inconclusive run: nothing to compare
    dynamically_exploitable = payload.appears_raw_in(interp.effects.page)

    report = PhpSafe().analyze_source(program, filename="prog.php")
    statically_found = any(f.kind is VulnKind.XSS for f in report.findings)

    if dynamically_exploitable:
        assert statically_found, program


@given(flow_programs())
@settings(max_examples=120, deadline=None)
def test_fully_sanitized_flows_are_silent(case):
    """Flows through a full sanitizer must produce no static finding
    (the no-false-alarm direction for *known* sanitizers)."""
    program, sanitized = case
    if not sanitized:
        return
    if "stripslashes" in program:
        return  # revert semantics may legitimately re-taint
    report = PhpSafe().analyze_source(program, filename="prog.php")
    assert not any(f.kind is VulnKind.XSS for f in report.findings), program


@given(flow_programs())
@settings(max_examples=60, deadline=None)
def test_analysis_deterministic(case):
    program, _sanitized = case
    first = PhpSafe().analyze_source(program)
    second = PhpSafe().analyze_source(program)
    assert sorted(f.key for f in first.findings) == sorted(
        f.key for f in second.findings
    )

"""Integration: the full paper evaluation, asserted cell by cell.

Runs phpSAFE, RIPS-like and Pixy-like over both generated corpus
versions (session fixture) and asserts every reproduced number:
Table I, Fig. 2, Table II, Section V.A (OOP), V.D (inertia) and
V.E (robustness).  Where the paper's own tables are internally
inconsistent (documented in EXPERIMENTS.md) the reproduction asserts
its self-consistent value.
"""

import pytest

from repro.config.vulnerability import VulnKind
from repro.evaluation import (
    analyze_inertia,
    both_versions_breakdown,
    compute_overlap,
    render_fig2,
    render_inertia,
    render_robustness,
    render_table1,
    render_table2,
    render_table3,
    vector_breakdown,
)

# (version, tool) -> (xss_tp, xss_fp, sqli_tp, sqli_fp)
TABLE1_EXPECTED = {
    ("2012", "phpSAFE"): (307, 63, 8, 2),
    ("2012", "RIPS"): (134, 79, 0, 0),
    ("2012", "Pixy"): (50, 185, 0, 0),
    ("2014", "phpSAFE"): (378, 57, 9, 5),  # paper prints 374 (see notes)
    ("2014", "RIPS"): (304, 47, 0, 1),  # paper XSS row prints 288
    ("2014", "Pixy"): (20, 197, 0, 0),
}


@pytest.mark.parametrize("version,tool", sorted(TABLE1_EXPECTED))
def test_table1_cells(evaluations, version, tool):
    xss = evaluations[version].confusion(tool, VulnKind.XSS)
    sqli = evaluations[version].confusion(tool, VulnKind.SQLI)
    assert (xss.tp, xss.fp, sqli.tp, sqli.fp) == TABLE1_EXPECTED[(version, tool)]


def test_table1_global_totals(evaluations):
    # paper Global rows: phpSAFE 315/387, RIPS 134/304, Pixy 50/20
    for version, tool, tp in (
        ("2012", "phpSAFE", 315),
        ("2014", "phpSAFE", 387),
        ("2012", "RIPS", 134),
        ("2014", "RIPS", 304),
        ("2012", "Pixy", 50),
        ("2014", "Pixy", 20),
    ):
        assert evaluations[version].confusion(tool).tp == tp


def test_tool_ranking_holds_everywhere(evaluations):
    """phpSAFE > RIPS > Pixy on TP, Precision, Recall, F-score.

    Precision is compared on the XSS rows: the paper's RIPS-2014 Global
    FP cell (79) contradicts its own XSS+SQLi breakdown (47+1), and with
    the self-consistent counts the Global precision race is within half
    a point (see EXPERIMENTS.md).
    """
    for version in ("2012", "2014"):
        evaluation = evaluations[version]
        ps = evaluation.confusion("phpSAFE")
        rips = evaluation.confusion("RIPS")
        pixy = evaluation.confusion("Pixy")
        assert ps.tp > rips.tp > pixy.tp
        assert ps.recall > rips.recall > pixy.recall
        assert ps.f_score > rips.f_score > pixy.f_score
        ps_xss = evaluation.confusion("phpSAFE", VulnKind.XSS)
        rips_xss = evaluation.confusion("RIPS", VulnKind.XSS)
        pixy_xss = evaluation.confusion("Pixy", VulnKind.XSS)
        assert ps_xss.precision > rips_xss.precision > pixy_xss.precision


def test_only_phpsafe_finds_sqli(evaluations):
    for version in ("2012", "2014"):
        evaluation = evaluations[version]
        assert evaluation.confusion("phpSAFE", VulnKind.SQLI).tp > 0
        assert evaluation.confusion("RIPS", VulnKind.SQLI).tp == 0
        assert evaluation.confusion("Pixy", VulnKind.SQLI).tp == 0


def test_phpsafe_sqli_recall_100_percent(evaluations):
    # paper: Recall 100% for SQLi in both versions
    for version in ("2012", "2014"):
        confusion = evaluations[version].confusion("phpSAFE", VulnKind.SQLI)
        assert confusion.recall == 1.0


def test_fig2_distinct_vulnerabilities(evaluations):
    older = compute_overlap(evaluations["2012"])
    newer = compute_overlap(evaluations["2014"])
    assert older.union_total == 394
    assert newer.union_total == 586
    growth = (newer.union_total - older.union_total) / older.union_total
    assert 0.45 <= growth <= 0.55  # the paper's "+51% in two years"


def test_fig2_every_tool_contributes_unique_findings(evaluations):
    """Paper: "different tools also detected many different vulnerabilities"."""
    for version in ("2012", "2014"):
        overlap = compute_overlap(evaluations[version])
        for tool in ("phpSAFE", "RIPS", "Pixy"):
            assert overlap.region(tool) > 0, (version, tool)


def test_oop_vulnerabilities_only_phpsafe(evaluations, corpus_2012, corpus_2014):
    """Section V.A: 151 OOP vulns in 2012 (10 plugins), 179 in 2014 (7)."""
    for evaluation, corpus, expected_count, expected_plugins in (
        (evaluations["2012"], corpus_2012, 151, 10),
        (evaluations["2014"], corpus_2014, 179, 7),
    ):
        oop_ids = {
            entry.spec.spec_id
            for entry in corpus.truth.vulnerabilities()
            if entry.spec.via_oop
        }
        oop_plugins = {
            entry.plugin
            for entry in corpus.truth.vulnerabilities()
            if entry.spec.via_oop
        }
        assert len(oop_ids) == expected_count
        assert len(oop_plugins) == expected_plugins
        detected_ps = evaluation.tools["phpSAFE"].match.detected_ids
        assert oop_ids <= detected_ps
        assert not oop_ids & evaluation.tools["RIPS"].match.detected_ids
        assert not oop_ids & evaluation.tools["Pixy"].match.detected_ids


def test_phpsafe_findings_flag_via_oop(evaluations, corpus_2014):
    """phpSAFE's reports mark OOP-mediated findings as such."""
    match = evaluations["2014"].tools["phpSAFE"].match
    oop_ids = {
        entry.spec.spec_id
        for entry in corpus_2014.truth.vulnerabilities()
        if entry.spec.via_oop
    }
    flagged = {
        item.entry.spec.spec_id
        for item in match.classified
        if item.is_tp and item.finding.via_oop
    }
    assert oop_ids <= flagged


TABLE2_EXPECTED = {
    # paper Table II; GET 2014 is 112 here (the paper's rows sum to 585
    # for a 586 union — our corpus is self-consistent)
    "2012": {"POST": 22, "GET": 96, "POST/GET/COOKIE": 24, "DB": 211,
             "File/Function/Array": 41},
    "2014": {"POST": 43, "GET": 112, "POST/GET/COOKIE": 57, "DB": 363,
             "File/Function/Array": 11},
    "both": {"POST": 11, "GET": 36, "POST/GET/COOKIE": 19, "DB": 162,
             "File/Function/Array": 4},
}


def test_table2_input_vectors(evaluations):
    older = vector_breakdown(evaluations["2012"])
    newer = vector_breakdown(evaluations["2014"])
    both = both_versions_breakdown(evaluations["2012"], evaluations["2014"])
    assert older.rows == TABLE2_EXPECTED["2012"]
    assert newer.rows == TABLE2_EXPECTED["2014"]
    assert both.rows == TABLE2_EXPECTED["both"]


def test_section_vc_tier_shares(evaluations):
    """36% directly exploitable, ~62% DB, ~2% other (2014)."""
    from repro.evaluation import tier_shares

    shares = tier_shares(vector_breakdown(evaluations["2014"]))
    assert 0.30 <= shares[1] <= 0.42
    assert 0.55 <= shares[2] <= 0.68
    assert shares[3] <= 0.05


def test_inertia_section_vd(evaluations):
    analysis = analyze_inertia(evaluations["2012"], evaluations["2014"])
    assert analysis.carried == 232  # Table II "Both versions" total
    assert 0.35 <= analysis.carried_share <= 0.45  # paper: 42%
    assert analysis.carried_easy == 66  # GET+POST+PGC carried
    assert 0.2 <= analysis.easy_share_of_carried <= 0.35  # paper: 24%


def test_robustness_section_ve(evaluations):
    expected = {
        ("2012", "phpSAFE"): 1,
        ("2012", "RIPS"): 0,
        ("2012", "Pixy"): 1,
        ("2014", "phpSAFE"): 3,
        ("2014", "RIPS"): 0,
        ("2014", "Pixy"): 31,
    }
    for (version, tool), failed in expected.items():
        evaluation = evaluations[version].tools[tool]
        assert len(evaluation.failed_files) == failed, (version, tool)
    assert evaluations["2012"].tools["Pixy"].error_messages == 1
    assert evaluations["2014"].tools["Pixy"].error_messages == 37


def test_corpus_file_counts_match_paper(corpus_2012, corpus_2014):
    assert corpus_2012.total_files == 266
    assert corpus_2014.total_files == 356


def test_renderers_do_not_crash(evaluations):
    older, newer = evaluations["2012"], evaluations["2014"]
    assert "TABLE I" in render_table1(evaluations)
    assert "TABLE II" in render_table2(
        vector_breakdown(older),
        vector_breakdown(newer),
        both_versions_breakdown(older, newer),
    )
    assert "TABLE III" in render_table3(evaluations)
    assert "FIG. 2" in render_fig2(compute_overlap(older), compute_overlap(newer))
    assert "INERTIA" in render_inertia(analyze_inertia(older, newer))
    assert "ROBUSTNESS" in render_robustness(evaluations)


def test_exact_convention_recall_lower_or_equal(evaluations):
    """Recall vs exact ground truth can only be <= the paper convention."""
    for version in ("2012", "2014"):
        for tool in ("phpSAFE", "RIPS", "Pixy"):
            paper = evaluations[version].confusion(tool, convention="paper")
            exact = evaluations[version].confusion(tool, convention="exact")
            assert exact.recall <= paper.recall + 1e-9

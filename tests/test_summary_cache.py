"""Tests for the persistent function-summary cache.

The summary tier stores per-function analysis results keyed by the
knowledge-base/options fingerprint, the function key, and the content
digest of the defining file, with dependency validation against every
file the summary was computed from.  These tests pin down the
invalidation contract: reuse only when it cannot change the findings.
"""

from repro.core import ModelCache, PhpSafe
from repro.core.phpsafe import PhpSafeOptions
from repro.plugin import Plugin

MAIN = "<?php include 'lib.php'; page($_GET['q']);"
LIB = "<?php function page($m) { echo '<b>' . $m . '</b>'; }"


def keys(report):
    return sorted(finding.key for finding in report.findings)


def scan(files, cache=None, options=None, profile=None):
    tool = PhpSafe(profile=profile, options=options, cache=cache)
    return tool.analyze(Plugin(name="p", files=dict(files)))


class TestSummaryRoundTrip:
    def test_second_run_reuses_summaries(self):
        cache = ModelCache()
        files = {"main.php": MAIN, "lib.php": LIB}
        first = scan(files, cache=cache)
        assert cache.summary_stats.stores >= 1
        second = scan(files, cache=cache)
        assert cache.summary_stats.hits >= 1
        assert keys(first) == keys(second)

    def test_findings_identical_with_and_without_cache(self):
        files = {"main.php": MAIN, "lib.php": LIB}
        uncached = scan(files)
        cache = ModelCache()
        scan(files, cache=cache)  # populate
        warm = scan(files, cache=cache)
        assert keys(warm) == keys(uncached)

    def test_disk_cache_survives_tool_instances(self, tmp_path):
        files = {"main.php": MAIN, "lib.php": LIB}
        first_tool = PhpSafe(cache_dir=str(tmp_path))
        first = first_tool.analyze(Plugin(name="p", files=dict(files)))
        # a fresh tool + fresh memory cache over the same directory:
        # summaries must come back from the disk tier
        second_tool = PhpSafe(cache_dir=str(tmp_path))
        second = second_tool.analyze(Plugin(name="p", files=dict(files)))
        assert second_tool.cache.summary_stats.hits >= 1
        assert second_tool.cache.summary_stats.disk_hits >= 1
        assert keys(first) == keys(second)


class TestSummaryInvalidation:
    def test_defining_file_change_invalidates(self):
        cache = ModelCache()
        scan({"main.php": MAIN, "lib.php": LIB}, cache=cache)
        # page() now sanitizes: the stale summary must not resurrect
        # the XSS finding
        safe_lib = "<?php function page($m) { echo htmlentities($m); }"
        warm = scan({"main.php": MAIN, "lib.php": safe_lib}, cache=cache)
        uncached = scan({"main.php": MAIN, "lib.php": safe_lib})
        assert keys(warm) == keys(uncached)

    def test_callee_file_change_invalidates_caller_summary(self):
        cache = ModelCache()
        main = "<?php include 'a.php'; include 'b.php'; outer($_GET['q']);"
        outer = "<?php function outer($m) { inner($m); }"
        inner_safe = "<?php function inner($m) { echo htmlentities($m); }"
        baseline = scan(
            {"main.php": main, "a.php": outer, "b.php": inner_safe}, cache=cache
        )
        assert keys(baseline) == []
        # outer()'s own file is unchanged, but its callee now echoes
        # unsanitized — the dependency digest must catch it
        inner_bad = "<?php function inner($m) { echo $m; }"
        warm = scan(
            {"main.php": main, "a.php": outer, "b.php": inner_bad}, cache=cache
        )
        uncached = scan({"main.php": main, "a.php": outer, "b.php": inner_bad})
        assert cache.summary_stats.stale >= 1
        assert keys(warm) == keys(uncached) != []

    def test_newly_defined_function_invalidates(self):
        cache = ModelCache()
        main = "<?php include 'go.php'; go($_GET['q']);"
        go = "<?php function go($m) { mystery($m); }"
        scan({"main.php": main, "go.php": go}, cache=cache)
        # mystery() springs into existence in a *new* file: go.php's
        # digest is unchanged, so only the unresolved-lookup record can
        # invalidate the summary
        mystery = "<?php function mystery($m) { echo $m; }"
        warm = scan(
            {"main.php": main, "go.php": go, "m.php": mystery}, cache=cache
        )
        uncached = scan({"main.php": main, "go.php": go, "m.php": mystery})
        assert keys(warm) == keys(uncached) != []


class TestFingerprintSeparation:
    def test_profile_change_misses(self):
        cache = ModelCache()
        files = {"main.php": MAIN, "lib.php": LIB}
        scan(files, cache=cache, options=PhpSafeOptions(wordpress_config=True))
        hits_before = cache.summary_stats.hits
        scan(files, cache=cache, options=PhpSafeOptions(wordpress_config=False))
        assert cache.summary_stats.hits == hits_before

    def test_oop_option_change_misses(self):
        cache = ModelCache()
        files = {"main.php": MAIN, "lib.php": LIB}
        scan(files, cache=cache, options=PhpSafeOptions(oop=True))
        hits_before = cache.summary_stats.hits
        scan(files, cache=cache, options=PhpSafeOptions(oop=False))
        assert cache.summary_stats.hits == hits_before

    def test_recover_mode_change_misses(self):
        cache = ModelCache()
        files = {"main.php": MAIN, "lib.php": LIB}
        scan(files, cache=cache, options=PhpSafeOptions(recover=True))
        hits_before = cache.summary_stats.hits
        scan(files, cache=cache, options=PhpSafeOptions(recover=False))
        assert cache.summary_stats.hits == hits_before

    def test_same_options_fresh_tool_hits(self):
        cache = ModelCache()
        files = {"main.php": MAIN, "lib.php": LIB}
        scan(files, cache=cache, options=PhpSafeOptions())
        scan(files, cache=cache, options=PhpSafeOptions())
        assert cache.summary_stats.hits >= 1


class TestPersistenceExclusions:
    def test_globals_reading_summary_not_persisted(self):
        cache = ModelCache()
        files = {
            "main.php": (
                "<?php include 'lib.php'; $cfg = $_GET['c'];"
                " render(); echo 'done';"
            ),
            "lib.php": (
                "<?php function render() { global $cfg; echo $cfg; }"
            ),
        }
        first = scan(files, cache=cache)
        # render()'s result depends on global state at call time, which
        # the cache key cannot capture — it must never be persisted
        summary_keys = [key for key in cache._slots if key.startswith("summary2!")]
        assert all("render" not in key for key in summary_keys)
        second = scan(files, cache=cache)
        assert keys(first) == keys(second)

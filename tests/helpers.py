"""Shared test helpers (importable, unlike conftest)."""

from __future__ import annotations

from repro.core import PhpSafe
from repro.plugin import Plugin


def analyze(source: str, tool=None):
    """Analyze one PHP source string; returns the report."""
    tool = tool or PhpSafe()
    if hasattr(tool, "analyze_source"):
        return tool.analyze_source(source)
    return tool.analyze(Plugin(name="t", files={"input.php": source}))


def findings_of(source: str, tool=None):
    return analyze(source, tool).findings

"""Engine edge cases: unusual but legal PHP the analyzers must survive."""

from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe

from tests.helpers import analyze, findings_of


def xss(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


class TestStringForms:
    def test_heredoc_flow(self):
        source = (
            "<?php $q = $_GET['q'];\n"
            "echo <<<EOT\nresult: $q done\nEOT;\n"
        )
        assert xss(source)

    def test_nowdoc_is_clean(self):
        source = "<?php $q = $_GET['q'];\necho <<<'EOT'\nliteral $q\nEOT;\n"
        assert not xss(source)

    def test_complex_interpolation_flow(self):
        source = "<?php $row = mysql_fetch_object($r); echo \"v: {$row->title}\";"
        assert xss(source)

    def test_escaped_dollar_clean(self):
        assert not xss('<?php echo "cost: \\$100";')

    def test_concat_of_many_pieces(self):
        parts = " . ".join(["'x'"] * 30 + ["$_GET['q']"] + ["'y'"] * 30)
        assert xss(f"<?php echo {parts};")


class TestAlternativeSyntax:
    def test_alt_if_taint_joined(self):
        source = (
            "<?php $x = 'safe';\n"
            "if ($c):\n  $x = $_GET['a'];\nendif;\n"
            "echo $x;"
        )
        assert xss(source)

    def test_alt_foreach(self):
        source = (
            "<?php $rows = mysql_fetch_array($r);\n"
            "foreach ($rows as $v):\n  echo $v;\nendforeach;\n"
        )
        assert xss(source)

    def test_template_style_mixing(self):
        source = (
            "<?php if (isset($_GET['name'])): ?>\n"
            "<h1>Hi</h1>\n"
            "<?php echo $_GET['name']; endif; ?>"
        )
        assert xss(source)


class TestScopes:
    def test_static_local_variable(self):
        source = (
            "<?php function counter() { static $n = 0; $n++; echo $n; } counter();"
        )
        assert not findings_of(source)

    def test_function_redefinition_first_wins(self):
        source = (
            "<?php function f($v) { echo $v; }\n"
            "if ($c) { function f($v) { } }\n"
            "f($_GET['x']);"
        )
        assert xss(source)  # first definition is used, it echoes

    def test_variable_variable_does_not_crash(self):
        analyze("<?php $name = 'x'; $$name = $_GET['v']; echo $x;")

    def test_nested_function_declarations(self):
        source = (
            "<?php function outer() { function inner() { echo $_GET['x']; } }"
        )
        assert xss(source)  # inner is collected by the model walker


class TestObjects:
    def test_chained_calls_on_unknown(self):
        assert not findings_of("<?php echo $a->b()->c()->d();")

    def test_new_inside_expression(self):
        source = (
            "<?php class W { public function raw() { return $_GET['r']; } }\n"
            "echo (new W())->raw();"
        )
        # parenthesized-new call form; engine must not crash and should
        # ideally resolve it
        analyze(source)

    def test_property_of_property(self):
        source = (
            "<?php $row = mysql_fetch_object($r); echo $row->meta->title;"
        )
        assert xss(source)  # container taint propagates through chains

    def test_dynamic_property_name(self):
        analyze("<?php $o = new stdClass(); echo $o->{$_GET['p']};")

    def test_clone_preserves_taint_path(self):
        source = (
            "<?php class W { public $d;"
            " public function fill() { $this->d = $_GET['x']; }"
            " public function show() { echo $this->d; } }"
            "$a = new W(); $a->fill(); $b = clone $a; $b->show();"
        )
        assert xss(source)


class TestExpressions:
    def test_assignment_inside_call(self):
        assert xss("<?php echo htmlentities($x = $_GET['a']) . $x;")

    def test_list_assignment_taints_targets(self):
        source = "<?php list($a, $b) = mysql_fetch_array($r); echo $b;"
        assert xss(source)

    def test_nested_ternaries(self):
        source = "<?php echo $a ? 'x' : ($b ? $_GET['v'] : 'y');"
        assert xss(source)

    def test_error_suppression_preserves_taint(self):
        assert xss("<?php echo @$_GET['x'];")

    def test_logical_result_is_clean(self):
        assert not findings_of("<?php echo ($_GET['a'] && true);")

    def test_instanceof_is_clean(self):
        assert not findings_of("<?php echo $_GET['a'] instanceof Widget;")

    def test_string_offset_access(self):
        assert xss("<?php $s = $_GET['x']; echo $s{0};")


class TestResilience:
    def test_deeply_nested_branches(self):
        source = "<?php $x = $_GET['a'];" + "".join(
            f"if ($c{i}) {{" for i in range(15)
        ) + "echo $x;" + "}" * 15
        assert xss(source)

    def test_many_functions(self):
        chunks = [
            f"function f{i}($v) {{ return f{i+1}($v); }}" for i in range(30)
        ]
        chunks.append("function f30($v) { echo $v; }")
        chunks.append("f0($_GET['deep']);")
        assert xss("<?php " + "\n".join(chunks))

    def test_step_budget_aborts_gracefully(self):
        from repro.core import PhpSafeOptions
        from repro.core.engine import EngineOptions

        options = PhpSafeOptions(engine=EngineOptions(step_budget=50))
        report = analyze("<?php " + "echo 'x';" * 100, PhpSafe(options=options))
        assert any("budget" in failure.reason for failure in report.failures)

    def test_empty_file(self):
        assert not findings_of("<?php")

    def test_html_only_file(self):
        assert not findings_of("<html><body>static</body></html>")

    def test_unicode_content(self):
        assert xss("<?php echo 'héllo ' . $_GET['möp'];")

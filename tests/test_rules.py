"""Rule-pack engine: loading, validation, compilation, invalidation."""

import copy
import json
import pickle

import pytest

from repro.batch import ToolSpec
from repro.config import ALL_KINDS, VulnKind
from repro.config.profiles import drupal, joomla, wordpress
from repro.core import PhpSafe, PhpSafeOptions
from repro.core.cache import ir_key, summary_key
from repro.plugin import Plugin
from repro.rules import (
    PackError,
    builtin_pack_names,
    compile_packs,
    load_pack,
    resolve_profile,
    validate_pack_data,
)
from repro.incidents import IncidentSeverity, IncidentStage
from repro.service.server import spec_fingerprint


def _write_pack(tmp_path, data, name="pack.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


MINIMAL = {
    "schema": 1,
    "name": "mini",
    "version": "1.0.0",
    "kinds": [{"value": "minikind", "title": "Mini", "description": "d"}],
    "sinks": [{"name": "readfile", "kind": "minikind", "args": [0]}],
}


class TestVulnKindRegistry:
    def test_builtins_iterate_in_order(self):
        assert [kind.value for kind in VulnKind] == ["xss", "sqli", "cmdi", "lfi"]
        assert len(VulnKind) == 4

    def test_interning_is_identity(self):
        assert VulnKind("xss") is VulnKind.XSS
        assert VulnKind(VulnKind.SQLI) is VulnKind.SQLI
        first = VulnKind("test-interned-kind")
        assert VulnKind("test-interned-kind") is first

    def test_pickle_round_trips_through_registry(self):
        kind = VulnKind("test-pickled-kind")
        assert pickle.loads(pickle.dumps(kind)) is kind
        assert pickle.loads(pickle.dumps(VulnKind.XSS)) is VulnKind.XSS

    def test_copy_returns_self(self):
        assert copy.copy(VulnKind.XSS) is VulnKind.XSS
        assert copy.deepcopy(VulnKind.LFI) is VulnKind.LFI

    def test_registered_lists_builtins_first(self):
        registered = VulnKind.registered()
        assert registered[:4] == tuple(VulnKind)
        assert all(not kind.builtin for kind in registered[4:])

    def test_later_registration_fills_but_never_overwrites_metadata(self):
        kind = VulnKind.register("test-meta-kind")
        assert kind.title == ""
        VulnKind.register("test-meta-kind", "Title", "Desc")
        assert kind.title == "Title"
        VulnKind.register("test-meta-kind", "Other", "Other")
        assert kind.title == "Title"
        assert kind.description == "Desc"

    def test_all_kinds_excludes_pack_kinds(self):
        VulnKind("test-excluded-kind")
        assert ALL_KINDS == frozenset(VulnKind)


class TestPackLoading:
    def test_builtin_packs_ship(self):
        assert set(builtin_pack_names()) == {
            "cmdi",
            "deserialization",
            "ssrf",
            "traversal",
        }

    def test_builtin_packs_load_with_content_hashes(self):
        for name in builtin_pack_names():
            pack = load_pack(name)
            assert pack.name == name
            assert len(pack.content_hash) == 16
            assert pack.pack_id == (pack.name, pack.version, pack.content_hash)

    def test_load_by_path(self, tmp_path):
        pack = load_pack(_write_pack(tmp_path, MINIMAL))
        assert pack.name == "mini"
        assert pack.sinks[0].name == "readfile"

    def test_content_hash_tracks_bytes_not_semantics(self, tmp_path):
        first = load_pack(_write_pack(tmp_path, MINIMAL, "a.json"))
        reformatted = tmp_path / "b.json"
        reformatted.write_text(
            json.dumps(MINIMAL, indent=2), encoding="utf-8"
        )
        second = load_pack(str(reformatted))
        assert first.content_hash != second.content_hash

    def test_missing_file_is_a_typed_issue(self, tmp_path):
        with pytest.raises(PackError) as err:
            load_pack(str(tmp_path / "absent.json"))
        assert err.value.issues

    def test_unknown_builtin_name_is_a_typed_issue(self):
        with pytest.raises(PackError):
            load_pack("no-such-pack")


class TestPackValidation:
    def _issues(self, data):
        pack, issues = validate_pack_data(data, "<test>")
        assert pack is None
        return [issue.message for issue in issues]

    def test_valid_pack_has_no_issues(self):
        pack, issues = validate_pack_data(MINIMAL, "<test>")
        assert issues == []
        assert pack is not None

    def test_missing_version(self):
        data = {k: v for k, v in MINIMAL.items() if k != "version"}
        assert any("version" in m for m in self._issues(data))

    def test_bad_schema_version(self):
        assert any(
            "schema" in m for m in self._issues({**MINIMAL, "schema": 99})
        )

    def test_bad_name_slug(self):
        assert self._issues({**MINIMAL, "name": "Bad Name!"})

    def test_unknown_top_level_field(self):
        assert any(
            "unknown" in m.lower()
            for m in self._issues({**MINIMAL, "wat": []})
        )

    def test_dangling_kind_label(self):
        data = {
            **MINIMAL,
            "sinks": [{"name": "f", "kind": "undeclared", "args": [0]}],
        }
        assert any("dangling" in m for m in self._issues(data))

    def test_redeclaring_builtin_kind(self):
        data = {**MINIMAL, "kinds": [{"value": "xss"}]}
        assert self._issues(data)

    def test_negative_sink_arg(self):
        data = {
            **MINIMAL,
            "sinks": [{"name": "f", "kind": "minikind", "args": [-1]}],
        }
        assert self._issues(data)

    def test_empty_pack(self):
        data = {"schema": 1, "name": "empty", "version": "1"}
        assert any("no entries" in m.lower() for m in self._issues(data))

    def test_malformed_json_never_raises_bare(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PackError) as err:
            load_pack(str(path))
        incidents = err.value.to_incidents()
        assert incidents
        assert all(
            incident.stage is IncidentStage.RULES
            and incident.severity is IncidentSeverity.ERROR
            for incident in incidents
        )


class TestCompilation:
    def test_compiled_profile_merges_collisions(self):
        profile = resolve_profile(
            PhpSafeOptions(rule_packs=tuple(builtin_pack_names()))
        )
        # two packs sink file_get_contents: ssrf and traversal
        kinds = {
            sink.kind.value for sink in profile.function_sinks("file_get_contents")
        }
        assert kinds == {"ssrf", "traversal"}
        # basename was the builtin LFI filter; the traversal pack unions in
        spec = profile.function_filter("basename")
        assert {"lfi", "traversal"} <= {kind.value for kind in spec.kinds}

    def test_kind_universe_widens_only_with_pack_kinds(self):
        base = wordpress()
        assert base.kind_universe() is ALL_KINDS
        packed = resolve_profile(PhpSafeOptions(rule_packs=("ssrf",)))
        universe = packed.kind_universe()
        assert ALL_KINDS < universe
        assert VulnKind("ssrf") in universe

    def test_profile_name_records_packs(self):
        profile = resolve_profile(PhpSafeOptions(rule_packs=("ssrf",)))
        assert profile.name == "wordpress+ssrf"
        assert [pack_id[0] for pack_id in profile.packs] == ["ssrf"]

    def test_base_profiles_resolve_by_name(self):
        for name in ("wordpress", "drupal", "joomla", "generic"):
            profile = resolve_profile(PhpSafeOptions(profile_name=name))
            assert profile.packs == ()

    def test_unknown_base_profile_is_typed(self):
        with pytest.raises(PackError):
            resolve_profile(PhpSafeOptions(profile_name="no-such-cms"))

    def test_cms_profile_fingerprints_differ(self):
        fingerprints = {
            profile().fingerprint() for profile in (wordpress, drupal, joomla)
        }
        assert len(fingerprints) == 3

    def test_pack_free_fingerprint_is_unchanged_by_engine(self):
        # compiling zero packs is the identity: same object, same
        # fingerprint, so pre-pack caches stay valid
        base = wordpress()
        assert compile_packs(base, []) is base


class TestFingerprintInvalidation:
    V1 = {
        "schema": 1,
        "name": "inval",
        "version": "1.0.0",
        "kinds": [{"value": "invalkind"}],
        "sinks": [{"name": "readfile", "kind": "invalkind", "args": [0]}],
    }
    V2 = {
        "schema": 1,
        "name": "inval",
        "version": "1.0.0",
        "kinds": [{"value": "invalkind"}],
        "sinks": [
            {"name": "readfile", "kind": "invalkind", "args": [0]},
            {"name": "unlink", "kind": "invalkind", "args": [0]},
        ],
    }

    def test_pack_edit_shifts_profile_fingerprint_and_cache_keys(self, tmp_path):
        path = _write_pack(tmp_path, self.V1)
        options = PhpSafeOptions(rule_packs=(path,))
        before = resolve_profile(options).fingerprint()
        _write_pack(tmp_path, self.V2)
        after = resolve_profile(options).fingerprint()
        assert before != after
        # the per-tier cache keys embed the fingerprint, so one edited
        # sink misses the summary, IR, and disk tiers at once
        assert summary_key(before, "f", "d") != summary_key(after, "f", "d")
        assert ir_key(before, "a.php", "d") != ir_key(after, "a.php", "d")

    def test_summary_and_ir_fingerprints_shift(self, tmp_path):
        path = _write_pack(tmp_path, self.V1)
        options = PhpSafeOptions(rule_packs=(path,))
        tool_v1 = PhpSafe(options=options, use_process_cache=False)
        first = tool_v1._summary_fingerprint(tool_v1.options.engine)
        _write_pack(tmp_path, self.V2)
        tool_v2 = PhpSafe(options=options, use_process_cache=False)
        second = tool_v2._summary_fingerprint(tool_v2.options.engine)
        assert first != second

    def test_disk_cache_not_reused_across_pack_edits(self, tmp_path):
        pack_path = _write_pack(tmp_path, self.V1)
        cache_dir = str(tmp_path / "cache")
        options = PhpSafeOptions(rule_packs=(pack_path,))
        plugin = Plugin(
            name="p",
            files={
                "p.php": "<?php readfile($_GET['f']);\nunlink($_GET['g']);\n"
            },
        )
        first = PhpSafe(options=options, cache_dir=cache_dir).analyze(plugin)
        assert len(first.findings) == 1
        _write_pack(tmp_path, self.V2)
        second = PhpSafe(options=options, cache_dir=cache_dir).analyze(plugin)
        assert len(second.findings) == 2

    def test_service_fingerprint_tracks_pack_content(self, tmp_path):
        pack_path = _write_pack(tmp_path, self.V1)
        options = PhpSafeOptions(rule_packs=(pack_path,))
        spec = ToolSpec(name="phpsafe", options=options)
        before = spec_fingerprint(spec)
        # same path, same options object — only the file content changed;
        # a prior service result for the same plugin digest must not dedup
        _write_pack(tmp_path, self.V2)
        assert spec_fingerprint(spec) != before

    def test_service_fingerprint_differs_across_profiles(self):
        prints = {
            spec_fingerprint(
                ToolSpec(
                    name="phpsafe",
                    options=PhpSafeOptions(profile_name=name),
                )
            )
            for name in ("wordpress", "drupal", "joomla")
        }
        assert len(prints) == 3


class TestPackAnalysis:
    def _scan(self, source, packs=None):
        options = PhpSafeOptions(
            rule_packs=tuple(packs if packs is not None else builtin_pack_names())
        )
        tool = PhpSafe(options=options, use_process_cache=False)
        return tool.analyze(Plugin(name="t", files={"t.php": source}))

    def test_each_pack_detects_its_kind(self):
        cases = {
            "ssrf": "<?php wp_remote_get($_GET['u']);",
            "traversal": "<?php unlink($_GET['f']);",
            "deserialization": "<?php unserialize($_POST['b']);",
            "cmdi": "<?php mail('a@b.c', 's', 'm', '', $_GET['x']);",
        }
        for kind, source in cases.items():
            report = self._scan(source)
            assert {f.kind.value for f in report.findings} == {kind}, kind

    def test_ast_and_ir_agree_on_pack_kinds(self):
        source = (
            "<?php function f($u) { return add_query_arg('a', 'b', $u); }\n"
            "wp_remote_get(f($_GET['u']));\n"
            "echo f($_GET['u']);\n"
        )
        options_ir = PhpSafeOptions(rule_packs=("ssrf",))
        options_ast = PhpSafeOptions(rule_packs=("ssrf",), use_ir=False)
        plugin = Plugin(name="t", files={"t.php": source})
        ir_report = PhpSafe(options=options_ir, use_process_cache=False).analyze(plugin)
        ast_report = PhpSafe(options=options_ast, use_process_cache=False).analyze(plugin)
        signatures = {
            (f.kind.value, f.file, f.line, f.sink) for f in ir_report.findings
        }
        assert signatures == {
            (f.kind.value, f.file, f.line, f.sink) for f in ast_report.findings
        }
        assert {f.kind.value for f in ir_report.findings} == {"ssrf"}

    def test_pack_taint_flows_through_user_function_summaries(self):
        source = (
            "<?php function pick() { return $_GET['u']; }\n"
            "wp_remote_get(pick());\n"
        )
        report = self._scan(source, packs=("ssrf",))
        assert {f.kind.value for f in report.findings} == {"ssrf"}

    def test_builtin_kinds_unaffected_by_packs(self):
        source = "<?php echo $_GET['a'];"
        bare = PhpSafe(use_process_cache=False).analyze(
            Plugin(name="t", files={"t.php": source})
        )
        packed = self._scan(source)
        assert {f.kind.value for f in bare.findings} == {"xss"}
        assert {f.kind.value for f in packed.findings} == {"xss"}


class TestSarifFromRegistry:
    def test_pack_kind_rule_metadata_comes_from_the_pack(self):
        from repro.service.sarif import result_signatures, to_sarif

        options = PhpSafeOptions(rule_packs=("ssrf",))
        tool = PhpSafe(options=options, use_process_cache=False)
        plugin = Plugin(
            name="t", files={"t.php": "<?php wp_remote_get($_GET['u']);"}
        )
        report = tool.analyze(plugin)
        document = to_sarif(report)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        ssrf_rules = [rule for rule in rules if rule["id"] == "phpsafe/ssrf"]
        assert len(ssrf_rules) == 1
        assert ssrf_rules[0]["name"] == "ServerSideRequestForgery"
        assert "request" in ssrf_rules[0]["fullDescription"]["text"].lower()
        # partialFingerprints round-trip losslessly for pack kinds too
        signatures = result_signatures(document)
        assert signatures == {
            (f.plugin or report.plugin, f.kind.value, f.file, f.line, f.sink)
            for f in report.findings
        }

    def test_builtin_rules_use_registry_titles(self):
        from repro.service.sarif import to_sarif

        report = PhpSafe(use_process_cache=False).analyze(
            Plugin(name="t", files={"t.php": "<?php echo $_GET['a'];"})
        )
        rules = to_sarif(report)["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["id"] == "phpsafe/xss"
        assert rules[0]["name"] == "CrossSiteScripting"


class TestRulesCli:
    def test_rules_list_ok(self, capsys):
        from repro.cli import main

        assert main(["rules", "list"]) == 0
        out = capsys.readouterr().out
        for name in builtin_pack_names():
            assert name in out

    def test_rules_validate_ok(self, capsys):
        from repro.cli import main

        assert main(["rules", "validate"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_rules_show(self, capsys):
        from repro.cli import main

        assert main(["rules", "show", "traversal"]) == 0
        out = capsys.readouterr().out
        assert "traversal" in out
        assert "basename" in out

    def test_rules_validate_invalid_pack_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "name": "bad",
                    "sinks": [{"name": "f", "kind": "nope"}],
                }
            ),
            encoding="utf-8",
        )
        assert main(["rules", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "dangling" in out

    def test_rules_validate_unparseable_has_no_traceback(self, tmp_path, capsys):
        from repro.cli import main

        broken = tmp_path / "broken.json"
        broken.write_text("{", encoding="utf-8")
        assert main(["rules", "validate", str(broken)]) == 1
        assert "Traceback" not in capsys.readouterr().out

    def test_scan_profile_and_rule_pack_flags(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "plugin"
        target.mkdir()
        (target / "a.php").write_text(
            "<?php readfile($_GET['f']);", encoding="utf-8"
        )
        code = main(
            ["scan", str(target), "--profile", "wordpress", "--rule-pack", "traversal"]
        )
        assert code == 1
        assert "TRAVERSAL" in capsys.readouterr().out
        # drupal profile has no traversal sink knowledge at all
        assert main(["scan", str(target), "--profile", "drupal"]) == 0

    def test_rule_pack_rejected_for_baseline_tools(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "p.php"
        target.write_text("<?php echo 1;", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["scan", str(target), "--tool", "rips", "--rule-pack", "ssrf"])

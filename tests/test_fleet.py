"""Fleet layer: hash ring, retry policy, leases, coordinator, chaos.

Everything here runs in-process (LocalNodeClient over real
AnalysisService instances with thread isolation) so the suite stays
fast and deterministic; the out-of-process path is covered by
``scripts/fleet_chaos.py`` / the ``fleet-chaos-smoke`` CI job.
"""

import random
import time
import urllib.error
import urllib.request

import pytest

from repro.plugin import Plugin
from repro.service import (
    AnalysisService,
    BackgroundServer,
    FleetCoordinator,
    HashRing,
    JobQueue,
    LocalNodeClient,
    NodeError,
    NodeHandle,
    RetryPolicy,
)
from repro.service.fleet import DOWN, UP
from repro.service.server import spec_fingerprint
from repro.batch import ToolSpec

VULN = "<?php echo $_GET['q'];"


def vuln_plugin(name):
    return Plugin(name=name, files={"index.php": f"<?php echo $_GET['{name}'];"})


def wait_done(service, ids, timeout=30.0):
    deadline = time.time() + timeout
    states = []
    while time.time() < deadline:
        states = [service.job_status(i)[1]["state"] for i in ids]
        if all(state in ("done", "failed") for state in states):
            return states
        time.sleep(0.02)
    raise AssertionError(f"jobs did not finish: {states}")


# ---------------------------------------------------------------------------
# hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_owner_is_stable(self):
        ring = HashRing(("a", "b", "c"))
        owners = {f"key{i}": ring.owner(f"key{i}") for i in range(50)}
        again = HashRing(("c", "b", "a"))  # insertion order must not matter
        assert owners == {key: again.owner(key) for key in owners}

    def test_keys_spread_over_nodes(self):
        ring = HashRing(("a", "b", "c"), replicas=64)
        counts = {"a": 0, "b": 0, "c": 0}
        for i in range(300):
            counts[ring.owner(f"digest-{i}")] += 1
        # consistent hashing is not perfectly uniform, but no node may
        # be starved or own nearly everything
        assert all(count > 30 for count in counts.values()), counts

    def test_removal_moves_only_lost_arc(self):
        ring = HashRing(("a", "b", "c"))
        before = {f"key{i}": ring.owner(f"key{i}") for i in range(200)}
        ring.remove("b")
        for key, owner in before.items():
            new_owner = ring.owner(key)
            if owner == "b":
                assert new_owner in ("a", "c")
            else:
                # survivors keep every key they already owned
                assert new_owner == owner
        assert set(ring.nodes) == {"a", "c"}

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(("a", "b", "c"))
        for i in range(20):
            order = ring.preference(f"k{i}")
            assert order[0] == ring.owner(f"k{i}")
            assert sorted(order) == ["a", "b", "c"]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("x") is None
        assert ring.preference("x") == []


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0)
        delays = [policy.delay(i) for i in range(6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays == sorted(delays)
        assert delays[-1] == pytest.approx(1.0)

    def test_jitter_spreads_but_never_exceeds_raw(self):
        policy = RetryPolicy(base_delay=0.5, max_delay=5.0, jitter=0.5)
        rng = random.Random(11)
        samples = {policy.delay(2, rng) for _ in range(50)}
        raw = 0.5 * 2.0 ** 2
        assert all(raw * 0.5 <= s <= raw for s in samples)
        assert len(samples) > 10  # actually jittered


class TestNodeHandle:
    def test_down_after_threshold_and_recovery(self):
        handle = NodeHandle("n", client=None, fail_threshold=2)
        assert not handle.record_failure()
        assert handle.state != DOWN
        assert handle.record_failure()  # second consecutive miss: down
        assert handle.state == DOWN
        assert handle.record_success()  # one success flips back
        assert handle.state == UP


# ---------------------------------------------------------------------------
# queue leases (fleet dispatch ledger semantics)
# ---------------------------------------------------------------------------


class TestQueueLeases:
    def test_claim_attaches_lease(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        queue.submit("d1", "f1", "p1")
        job = queue.claim(owner="dispatch-0", lease_seconds=30)
        assert job.lease_owner == "dispatch-0"
        assert job.lease_expires > time.time()

    def test_expire_leases_steals_lapsed_rows_only(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        queue.submit("d1", "f1", "p1")
        queue.submit("d2", "f1", "p2")
        lapsed = queue.claim(owner="a", lease_seconds=0.01)
        healthy = queue.claim(owner="b", lease_seconds=60)
        time.sleep(0.02)
        expired = queue.expire_leases()
        assert [(job.id, outcome) for job, outcome in expired] == [
            (lapsed.id, "stolen")
        ]
        assert queue.get(lapsed.id).state == "queued"
        assert queue.get(healthy.id).state == "running"

    def test_extend_lease_keeps_job_unstealable(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        queue.submit("d1", "f1", "p1")
        job = queue.claim(owner="a", lease_seconds=0.05)
        queue.extend_lease(job.id, 60)
        time.sleep(0.06)
        assert queue.expire_leases() == []

    def test_steal_keeps_attempt_release_refunds(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"), max_attempts=5)
        queue.submit("d1", "f1", "p1")
        job = queue.claim()
        assert job.attempts == 1
        assert queue.steal(job.id) == "stolen"
        assert queue.get(job.id).attempts == 1  # charged
        job = queue.claim()
        assert job.attempts == 2
        queue.release(job.id)
        assert queue.get(job.id).attempts == 1  # refunded

    def test_rebalance_exhaustion_quarantines_not_requeues_forever(
        self, tmp_path
    ):
        """Regression: a job stolen until ``max_attempts`` must land in
        quarantine (failed, incident in the error), never flip back to
        ``queued`` in an endless rebalance loop."""
        queue = JobQueue(str(tmp_path / "q.sqlite"), max_attempts=2)
        queue.submit("d1", "f1", "p1")
        job = queue.claim(owner="a", lease_seconds=0.01)
        time.sleep(0.02)
        assert queue.expire_leases()[0][1] == "stolen"
        job = queue.claim(owner="b", lease_seconds=0.01)
        assert job.attempts == 2
        time.sleep(0.02)
        expired = queue.expire_leases()
        assert expired[0][1] == "quarantined"
        final = queue.get(job.id)
        assert final.state == "failed"
        assert "quarantined after 2 attempt(s)" in final.error
        # and it must stay failed: nothing left to claim
        assert queue.claim() is None

    def test_steal_noop_on_finished_job(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        queue.submit("d1", "f1", "p1")
        job = queue.claim()
        queue.complete(job.id)
        assert queue.steal(job.id) == "noop"


# ---------------------------------------------------------------------------
# coordinator (in-process fleet)
# ---------------------------------------------------------------------------


class DeadAfterPersist:
    """Node client simulating kill-after-persist-before-ack.

    Submissions pass through to a real service (which runs the job and
    persists its result to the shared store), but every status poll —
    the ack path — raises :class:`NodeError`, as if the node died the
    instant after writing the result.
    """

    def __init__(self, service, settle=2.0):
        self.service = service
        self.settle = settle
        self.address = "local:dead-after-persist"
        self._submitted_at = None

    def submit(self, payload):
        self._submitted_at = time.time()
        return self.service.submit(payload)

    def status(self, job_id):
        if self._submitted_at is not None:
            # give the real worker time to persist before "dying"
            remaining = self._submitted_at + self.settle - time.time()
            if remaining > 0:
                time.sleep(remaining)
        raise NodeError("node died before acking")

    def health(self):
        status, body = self.service.health()
        if status != 200:
            raise NodeError("unhealthy")
        return body

    def metrics(self):
        status, body = self.service.metrics()
        if status != 200:
            raise NodeError("no metrics")
        return body


class AcceptThenDie:
    """A node that accepts every submission, then never acks.

    Models a node that takes the job and crashes before producing a
    result: the coordinator's steal path must charge each interrupted
    attempt and quarantine the job once attempts are exhausted."""

    address = "local:accept-then-die"

    def __init__(self):
        self.accepted = 0

    def submit(self, payload):
        self.accepted += 1
        return 202, {"id": f"remote-{self.accepted}", "state": "queued"}

    def status(self, job_id):
        raise NodeError("died mid-job, nothing persisted")

    def health(self):
        return {"status": "ok"}

    def metrics(self):
        raise NodeError("no metrics")


def make_fleet(tmp_path, node_count=2, **coordinator_kwargs):
    store_dir = str(tmp_path / "store")
    services, clients = [], {}
    for index in range(node_count):
        service = AnalysisService(
            str(tmp_path / f"node{index}"),
            jobs=1,
            isolation="thread",
            store_dir=store_dir,
            node_name=f"node{index}",
        )
        service.start()
        services.append(service)
        clients[f"node{index}"] = LocalNodeClient(service)
    defaults = dict(
        store_dir=store_dir,
        probe_interval=0.1,
        poll_interval=0.05,
        poll_fail_threshold=2,
        lease_seconds=5.0,
        retry_policy=RetryPolicy(base_delay=0.02, max_delay=0.2, max_attempts=3),
        seed=3,
    )
    defaults.update(coordinator_kwargs)
    coordinator = FleetCoordinator(
        str(tmp_path / "coordinator"), clients, **defaults
    )
    coordinator.start()
    return coordinator, services, clients


def stop_fleet(coordinator, services):
    coordinator.shutdown(timeout=5)
    coordinator.close()
    for service in services:
        service.shutdown(timeout=5)
        service.close()


class TestFleetCoordinator:
    def test_shards_jobs_and_matches_single_node_results(self, tmp_path):
        coordinator, services, _ = make_fleet(tmp_path, node_count=3)
        try:
            plugins = [vuln_plugin(f"plug{i}") for i in range(6)]
            ids = []
            for plugin in plugins:
                status, body = coordinator.submit(
                    {"name": plugin.name, "files": dict(plugin.files)}
                )
                assert status == 202, body
                ids.append(body["id"])
            states = wait_done(coordinator, ids)
            assert states == ["done"] * len(ids)
            used_nodes = {
                coordinator.job_status(job_id)[1]["node"] for job_id in ids
            }
            assert len(used_nodes) > 1  # actually sharded
            # every result is in the shared store under the fleet key
            for job_id in ids:
                _s, body = coordinator.job_status(job_id)
                assert (
                    coordinator.store.get_result(
                        body["digest"], coordinator.fingerprint
                    )
                    is not None
                )
        finally:
            stop_fleet(coordinator, services)

    def test_duplicate_submissions_coalesce_or_dedup(self, tmp_path):
        coordinator, services, _ = make_fleet(tmp_path, node_count=2)
        try:
            plugin = vuln_plugin("dupe")
            payload = {"name": plugin.name, "files": dict(plugin.files)}
            _s, first = coordinator.submit(payload)
            status2, second = coordinator.submit(payload)
            # same digest in flight: coalesced onto the same job
            assert status2 in (200, 202)
            wait_done(coordinator, [first["id"], second["id"]])
            status3, third = coordinator.submit(payload)
            assert status3 == 200 and third["cached"] is True
            assert coordinator.store.result_count() == 1
        finally:
            stop_fleet(coordinator, services)

    def test_exactly_once_when_node_dies_after_persist(self, tmp_path):
        """Satellite: kill a node after result-persist but before ack.
        The resteal must dedup on (digest, fingerprint): no re-run, one
        result, client sees ``done``."""
        store_dir = str(tmp_path / "store")
        backend = AnalysisService(
            str(tmp_path / "backend"),
            jobs=1,
            isolation="thread",
            store_dir=store_dir,
        )
        backend.start()
        dying = DeadAfterPersist(backend, settle=3.0)
        coordinator = FleetCoordinator(
            str(tmp_path / "coordinator"),
            {"dying": dying},
            store_dir=store_dir,
            probe_interval=0.1,
            poll_interval=0.05,
            poll_fail_threshold=2,
            lease_seconds=5.0,
            seed=3,
        )
        coordinator.start()
        try:
            plugin = vuln_plugin("persisted")
            status, body = coordinator.submit(
                {"name": plugin.name, "files": dict(plugin.files)}
            )
            assert status == 202
            states = wait_done(coordinator, [body["id"]], timeout=30)
            assert states == ["done"]
            assert coordinator.fleet.steal_dedups == 1
            assert coordinator.fleet.steals == 0  # deduped, not re-run
            assert coordinator.store.result_count() == 1
            _s, final = coordinator.job_status(body["id"])
            assert final["result"]["digest"] == final["digest"]
            assert final["result"]["outcome"] == "ok"
        finally:
            coordinator.shutdown(timeout=5)
            coordinator.close()
            backend.shutdown(timeout=5)
            backend.close()

    def test_dead_node_quarantines_job_with_incident(self, tmp_path):
        """A job whose every dispatch dies exhausts max_attempts and
        quarantines — counted in telemetry, incident recorded, and the
        row never flips back to queued."""
        coordinator = FleetCoordinator(
            str(tmp_path / "coordinator"),
            {"dead": AcceptThenDie()},
            store_dir=str(tmp_path / "store"),
            probe_interval=30.0,  # keep the prober from marking it down:
            poll_interval=0.05,   # exercise the dispatch-retry path itself
            poll_fail_threshold=2,
            max_attempts=2,
            lease_seconds=5.0,
            retry_policy=RetryPolicy(
                base_delay=0.01, max_delay=0.05, max_attempts=2
            ),
            fail_threshold=1000,
            seed=3,
        )
        coordinator.start()
        try:
            plugin = vuln_plugin("doomed")
            status, body = coordinator.submit(
                {"name": plugin.name, "files": dict(plugin.files)}
            )
            assert status == 202
            deadline = time.time() + 20
            while time.time() < deadline:
                _s, state = coordinator.job_status(body["id"])
                if state["state"] == "failed":
                    break
                time.sleep(0.05)
            assert state["state"] == "failed", state
            assert "quarantined" in state["error"]
            assert coordinator.stats.quarantined == 1
            assert coordinator.incidents, "incident must be recorded"
            assert coordinator.incidents[0]["digest"] == state["digest"]
            # quarantine is terminal: nothing left to claim
            assert coordinator.queue.claim() is None
        finally:
            coordinator.shutdown(timeout=5)
            coordinator.close()

    def test_degraded_mode_sheds_load_but_serves_cached(self, tmp_path):
        coordinator, services, clients = make_fleet(
            tmp_path, node_count=1, min_live=1, fail_threshold=1
        )
        try:
            plugin = vuln_plugin("cached-before-outage")
            payload = {"name": plugin.name, "files": dict(plugin.files)}
            _s, body = coordinator.submit(payload)
            wait_done(coordinator, [body["id"]])
            # node goes dark
            services[0].accepting = False
            clients["node0"].service = _Unreachable()
            deadline = time.time() + 10
            while time.time() < deadline and coordinator._live_count():
                time.sleep(0.05)
            assert coordinator._live_count() == 0
            status, shed = coordinator.submit(
                {"name": "fresh", "files": {"i.php": VULN}}
            )
            assert status == 503
            assert shed["retry_after"] == coordinator.retry_after
            assert shed["degraded"] is True
            assert coordinator.fleet.shed_503 == 1
            # the already-analyzed plugin still gets its cached answer
            status, cached = coordinator.submit(payload)
            assert status == 200 and cached["cached"] is True
            _s, health = coordinator.health()
            assert health["status"] == "degraded"
        finally:
            clients["node0"].service = services[0]
            stop_fleet(coordinator, services)

    def test_fleet_status_and_metrics_aggregate(self, tmp_path):
        coordinator, services, _ = make_fleet(tmp_path, node_count=2)
        try:
            plugin = vuln_plugin("metrics")
            _s, body = coordinator.submit(
                {"name": plugin.name, "files": dict(plugin.files)}
            )
            wait_done(coordinator, [body["id"]])
            status, fleet = coordinator.fleet_status()
            assert status == 200
            assert set(fleet["nodes"]) == {"node0", "node1"}
            assert fleet["degraded"] is False
            status, metrics = coordinator.metrics()
            assert status == 200
            assert metrics["schema"].endswith("/v7")
            assert metrics["nodes"] == {"total": 2, "up": 2, "down": 0}
            assert metrics["coordinator"]["completed"] == 1
            assert metrics["coordinator"]["queue_wait"]["p99"] >= 0
            assert metrics["fleet"]["dispatched"] >= 1
        finally:
            stop_fleet(coordinator, services)


class _Unreachable:
    """Stand-in service whose every call raises (node unplugged)."""

    def __getattr__(self, name):
        def boom(*args, **kwargs):
            raise NodeError("unplugged")

        return boom


# ---------------------------------------------------------------------------
# Retry-After over HTTP + fingerprint determinism
# ---------------------------------------------------------------------------


class TestRetryAfterHeader:
    def test_429_carries_retry_after_header(self, tmp_path):
        service = AnalysisService(
            str(tmp_path / "svc"),
            jobs=1,
            isolation="thread",
            max_queue_depth=0,
            retry_after=2.5,
        )
        server = BackgroundServer(service)
        host, port = server.start()
        try:
            body = b'{"name": "x", "files": {"i.php": "<?php echo 1;"}}'
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/scans",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "3"  # ceil(2.5)
        finally:
            server.stop(drain_timeout=5)
            service.close()


class TestSpecFingerprint:
    def test_fingerprint_is_deterministic_across_processes(self):
        """The fleet's exactly-once key must not depend on hash
        randomization (frozenset repr order varies per process)."""
        import subprocess
        import sys

        import os

        code = (
            "from repro.batch import ToolSpec\n"
            "from repro.core import PhpSafe\n"
            "from repro.service.server import spec_fingerprint\n"
            "print(spec_fingerprint(ToolSpec.from_tool(PhpSafe())))\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        runs = set()
        for seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            runs.add(out.stdout.strip())
        assert len(runs) == 1, runs
        from repro.core import PhpSafe

        assert runs == {spec_fingerprint(ToolSpec.from_tool(PhpSafe()))}

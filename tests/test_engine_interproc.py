"""Engine behaviour: inter-procedural analysis and function summaries."""

from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe, PhpSafeOptions

from tests.helpers import analyze, findings_of


def xss(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


class TestParameterFlow:
    def test_tainted_argument_reaches_sink_in_callee(self):
        assert xss("<?php function out($v) { echo $v; } out($_GET['x']);")

    def test_clean_argument_no_finding(self):
        assert not xss("<?php function out($v) { echo $v; } out('static');")

    def test_argument_position_matters(self):
        source = (
            "<?php function pick($a, $b) { echo $b; }"
            "pick($_GET['x'], 'safe');"
        )
        assert not xss(source)
        source = (
            "<?php function pick($a, $b) { echo $b; }"
            "pick('safe', $_GET['x']);"
        )
        assert xss(source)

    def test_sanitization_inside_callee(self):
        source = (
            "<?php function out($v) { echo htmlentities($v); }"
            "out($_GET['x']);"
        )
        assert not xss(source)

    def test_two_hop_call_chain(self):
        source = (
            "<?php function inner($v) { echo $v; }"
            "function outer($v) { inner($v); }"
            "outer($_POST['x']);"
        )
        assert xss(source)

    def test_three_hop_call_chain(self):
        source = (
            "<?php function a($v) { b($v); }"
            "function b($v) { c($v); }"
            "function c($v) { echo $v; }"
            "a($_GET['deep']);"
        )
        assert xss(source)


class TestReturnFlow:
    def test_tainted_return_value(self):
        source = (
            "<?php function fetch() { return $_GET['x']; }"
            "echo fetch();"
        )
        assert xss(source)

    def test_param_to_return_transfer(self):
        source = (
            "<?php function wrap($v) { return '<b>' . $v . '</b>'; }"
            "echo wrap($_GET['x']);"
        )
        assert xss(source)

    def test_sanitizing_identity(self):
        source = (
            "<?php function clean($v) { return htmlentities($v); }"
            "echo clean($_GET['x']);"
        )
        assert not xss(source)

    def test_return_of_clean_is_clean(self):
        source = "<?php function version() { return '1.0'; } echo version();"
        assert not xss(source)

    def test_conditional_return_joined(self):
        source = (
            "<?php function pick($c) { if ($c) { return 'safe'; }"
            "return $_GET['x']; } echo pick(1);"
        )
        assert xss(source)


class TestByReference:
    def test_by_ref_out_parameter(self):
        source = (
            "<?php function fill(&$out) { $out = $_GET['x']; }"
            "fill($result); echo $result;"
        )
        assert xss(source)

    def test_by_ref_clean_write(self):
        source = (
            "<?php function fill(&$out) { $out = 'safe'; }"
            "$result = $_GET['x']; fill($result); echo $result;"
        )
        # weak update: the engine may keep the old taint (join) — but it
        # must not crash; accept either result and require determinism
        first = xss(source)
        second = xss(source)
        assert len(first) == len(second)


class TestRecursion:
    def test_direct_recursion_terminates(self):
        source = (
            "<?php function spin($v) { if ($v) { spin($v); } echo $v; }"
            "spin($_GET['x']);"
        )
        assert xss(source)

    def test_mutual_recursion_terminates(self):
        source = (
            "<?php function ping($v) { pong($v); }"
            "function pong($v) { ping($v); echo $v; }"
            "ping($_GET['x']);"
        )
        assert findings_of(source) is not None  # termination is the test

    def test_self_recursive_uncalled(self):
        source = "<?php function loop() { loop(); echo $_GET['x']; }"
        assert xss(source)


class TestUncalledFunctions:
    def test_uncalled_function_analyzed(self):
        # "these functions should be parsed anyway, as they may be
        # directly called from the main application" (Section III.B)
        assert xss("<?php function hook() { echo $_GET['x']; }")

    def test_uncalled_param_flows_dropped(self):
        # no caller binds the parameter: not reported
        assert not xss("<?php function hook($v) { echo $v; }")

    def test_uncalled_with_internal_source(self):
        source = "<?php function hook($v) { echo $v; echo $_POST['y']; }"
        found = xss(source)
        assert len(found) == 1

    def test_uncalled_disabled_by_option(self):
        options = PhpSafeOptions(analyze_uncalled=False)
        tool = PhpSafe(options=options)
        assert not xss("<?php function hook() { echo $_GET['x']; }", tool)


class TestSummaryReuse:
    def test_function_summarized_once(self):
        source = (
            "<?php function show($v) { echo $v; }"
            + "".join(f"show($_GET['k{i}']);" for i in range(20))
        )
        report = analyze(source)
        assert len(report.findings) == 1  # one sink line

    def test_summary_off_same_findings(self):
        source = (
            "<?php function show($v) { echo $v; } show($_GET['a']);"
        )
        on = analyze(source)
        off = analyze(source, PhpSafe(options=PhpSafeOptions(use_summaries=False)))
        assert {f.key for f in on.findings} == {f.key for f in off.findings}

    def test_closures_do_not_crash(self):
        source = "<?php $f = function ($v) { return $v; }; echo $f($_GET['x']);"
        analyze(source)  # closures are opaque; must not raise

"""Analysis-service subsystem: store, queue, SARIF, workers, HTTP."""

import http.client
import json
import os
import threading
import time

import pytest

from repro.batch import ToolSpec
from repro.batch.telemetry import SCHEMA, ScanTelemetry, ServiceStats
from repro.core import PhpSafe
from repro.core.results import ToolReport, finding_signatures
from repro.core.tool import AnalyzerTool
from repro.incidents import Incident, IncidentSeverity, IncidentStage
from repro.plugin import Plugin
from repro.service import (
    AnalysisService,
    BackgroundServer,
    JobQueue,
    QueueFull,
    ResultStore,
    plugin_digest,
    result_signatures,
    to_sarif,
)
from repro.service.sarif import result_count

VULN = "<?php echo $_GET['q'];"
SAFE = "<?php echo esc_html($_GET['q']);"


def small_plugins():
    return [
        Plugin(name="alpha", files={"index.php": VULN}),
        Plugin(name="beta", files={"index.php": SAFE, "lib.php": "<?php $x = 1;"}),
        Plugin(name="gamma", files={"index.php": "<?php echo $_COOKIE['c'];"}),
        Plugin(name="delta", files={"admin.php": "<?php echo $_POST['d'];"}),
    ]


def wait_done(service, ids, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        states = [service.job_status(i)[1]["state"] for i in ids]
        if all(state in ("done", "failed") for state in states):
            return states
        time.sleep(0.02)
    raise AssertionError(f"jobs did not finish: {states}")


def submit_plugin(service, plugin):
    code, body = service.submit(
        {"name": plugin.name, "version": plugin.version, "files": dict(plugin.files)}
    )
    assert code in (200, 202), body
    return body


class CrashOnBomb(AnalyzerTool):
    """Kills its worker process outright for one plugin name."""

    name = "crash-on-bomb"

    def analyze(self, plugin: Plugin) -> ToolReport:
        if plugin.name == "bomb":
            os._exit(23)
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        report.files_analyzed = plugin.file_count
        return report


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_digest_is_content_only(self):
        files = {"a.php": "<?php 1;", "b.php": "<?php 2;"}
        one = Plugin(name="one", version="1.0", files=dict(files))
        two = Plugin(name="two", version="9.9", files=dict(files))
        assert plugin_digest(one) == plugin_digest(two)
        changed = Plugin(name="one", files={**files, "a.php": "<?php 3;"})
        assert plugin_digest(changed) != plugin_digest(one)

    def test_plugin_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plugin = Plugin(name="p", version="2.0", files={"x.php": VULN})
        digest = store.put_plugin(plugin)
        loaded = store.load_plugin(digest)
        assert loaded.name == "p" and loaded.version == "2.0"
        assert loaded.files == plugin.files
        assert store.load_plugin("0" * 64) is None

    def test_results_keyed_by_fingerprint(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_result("d1", "cfgA", {"outcome": "ok"})
        assert store.get_result("d1", "cfgA") == {"outcome": "ok"}
        assert store.get_result("d1", "cfgB") is None
        assert store.get_result("d2", "cfgA") is None
        assert store.result_count() == 1

    def test_corrupt_result_treated_as_absent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_result("d1", "cfg", {"outcome": "ok"})
        path = store._shard_path(store._results_dir, store.result_key("d1", "cfg"))
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert store.get_result("d1", "cfg") is None
        # quarantined: the bad object was removed
        assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# durable queue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_lifecycle(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        job, created = queue.submit("digest-a", "cfg", plugin="alpha")
        assert created and job.state == "queued"
        claimed = queue.claim()
        assert claimed.id == job.id and claimed.state == "running"
        assert claimed.attempts == 1
        queue.complete(claimed.id)
        done = queue.get(job.id)
        assert done.state == "done" and done.finished_at is not None
        assert queue.claim() is None

    def test_fifo_order(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        first, _ = queue.submit("d1")
        second, _ = queue.submit("d2")
        assert queue.claim().id == first.id
        assert queue.claim().id == second.id

    def test_bounded_depth_raises(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"), max_depth=2)
        queue.submit("d1")
        queue.submit("d2")
        with pytest.raises(QueueFull):
            queue.submit("d3")
        # draining frees capacity
        queue.claim()
        queue.submit("d3")

    def test_duplicate_submission_coalesces(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        job, created = queue.submit("d1", "cfg")
        again, created_again = queue.submit("d1", "cfg")
        assert created and not created_again
        assert again.id == job.id
        assert queue.depth() == 1
        # a different analyzer fingerprint is different work
        _, created_other = queue.submit("d1", "other-cfg")
        assert created_other

    def test_cached_submission_born_done(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        job, created = queue.submit("d1", "cfg", cached=True)
        assert created and job.state == "done" and job.cached
        assert queue.depth() == 0

    def test_persistence_and_recover(self, tmp_path):
        path = str(tmp_path / "q.sqlite")
        queue = JobQueue(path)
        queued, _ = queue.submit("d-queued")
        running, _ = queue.submit("d-running")
        queue.submit("d-done")
        assert queue.claim().digest == "d-queued"
        queue.complete(queued.id)
        claimed = queue.claim()
        assert claimed.digest == "d-running"
        queue.close()  # daemon dies mid-analysis

        reopened = JobQueue(path)
        assert reopened.recover() == 1
        job = reopened.get(claimed.id)
        assert job.state == "queued" and job.started_at is None
        counts = reopened.counts()
        assert counts["queued"] == 2 and counts["done"] == 1
        assert counts["running"] == 0

    def test_recover_quarantines_exhausted_attempts(self, tmp_path):
        path = str(tmp_path / "q.sqlite")
        queue = JobQueue(path, max_attempts=2)
        job, _ = queue.submit("d-bomb")
        for _round in range(2):
            claimed = queue.claim()
            assert claimed.id == job.id
            queue.close()
            queue = JobQueue(path, max_attempts=2)
            queue.recover()
        # two interrupted claims: the third recover fails it for good
        assert queue.get(job.id).state == "failed"
        assert "abandoned" in queue.get(job.id).error

    def test_release_returns_job_to_queue(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        job, _ = queue.submit("d1")
        claimed = queue.claim()
        queue.release(claimed.id)
        back = queue.get(job.id)
        assert back.state == "queued" and back.attempts == 0


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def report(self, source=VULN):
        return PhpSafe().analyze(Plugin(name="demo", files={"index.php": source}))

    def test_document_shape(self):
        document = to_sarif(self.report())
        assert document["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in document["$schema"]
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "phpSAFE"
        assert any(rule["id"] == "phpsafe/xss" for rule in driver["rules"])
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_finding_maps_to_result(self):
        report = self.report()
        (run,) = to_sarif(report)["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "phpsafe/xss"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "index.php"
        assert location["region"]["startLine"] == report.findings[0].line
        assert result["level"] == "error"
        # the flow trace travels as a codeFlow
        steps = run["results"][0]["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(steps) == len(report.findings[0].trace)

    def test_round_trip_exactly_once(self):
        reports = [
            PhpSafe().analyze(plugin)
            for plugin in small_plugins()
        ]
        document = to_sarif(reports)
        expected = finding_signatures(reports)
        assert result_signatures(document) == expected
        assert result_count(document) == sum(len(r.findings) for r in reports)

    def test_incidents_become_notifications(self):
        report = self.report()
        report.incidents.append(
            Incident(
                stage=IncidentStage.PARSE,
                severity=IncidentSeverity.WARNING,
                file="index.php",
                reason="resynced",
                recovered=True,
                line=3,
            )
        )
        (run,) = to_sarif(report)["runs"]
        (notification,) = run["invocations"][0]["toolExecutionNotifications"]
        assert notification["level"] == "warning"
        assert notification["descriptor"]["id"] == "phpsafe/incident/parse"
        assert "resynced" in notification["message"]["text"]

    def test_clean_report_has_no_results(self):
        document = to_sarif(self.report(SAFE))
        assert document["runs"][0]["results"] == []

    def test_fingerprint_survives_separator_characters(self):
        from repro.service.sarif import _fingerprint, _split_fingerprint
        from repro.config.vulnerability import VulnKind
        from repro.core.results import Finding

        finding = Finding(
            kind=VulnKind.XSS, file="dir|sub\\file.php", line=7, sink="echo"
        )
        parts = _split_fingerprint(_fingerprint(finding, "p|lug"))
        assert parts == ["p|lug", "xss", "dir|sub\\file.php", "7", "echo"]


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def make_service(self, tmp_path, **kwargs):
        kwargs.setdefault("jobs", 2)
        kwargs.setdefault("isolation", "thread")
        return AnalysisService(data_dir=str(tmp_path / "svc"), **kwargs)

    def test_concurrent_submissions_match_serial_scan(self, tmp_path):
        plugins = small_plugins()
        service = self.make_service(tmp_path, jobs=3)
        service.start()
        try:
            ids = [submit_plugin(service, plugin)["id"] for plugin in plugins]
            states = wait_done(service, ids)
            assert states == ["done"] * len(plugins)
            sarif_signatures = set()
            for job_id in ids:
                code, document = service.sarif(job_id)
                assert code == 200
                sarif_signatures |= result_signatures(document)
            serial = [PhpSafe().analyze(plugin) for plugin in plugins]
            assert sarif_signatures == finding_signatures(serial)
        finally:
            service.shutdown()

    def test_resubmission_is_served_from_store(self, tmp_path):
        plugin = small_plugins()[0]
        service = self.make_service(tmp_path, jobs=1)
        service.start()
        try:
            first = submit_plugin(service, plugin)
            wait_done(service, [first["id"]])
            code, body = service.submit(
                {"name": plugin.name, "files": dict(plugin.files)}
            )
            assert code == 200 and body["cached"] is True
            assert body["state"] == "done"
            assert service.stats.deduped == 1
            # renaming the same bytes still hits the store
            code, body = service.submit({"name": "other", "files": dict(plugin.files)})
            assert code == 200 and body["cached"] is True
        finally:
            service.shutdown()

    def test_overload_returns_429(self, tmp_path):
        service = self.make_service(tmp_path, jobs=1, max_queue_depth=2)
        # pool deliberately not started: jobs pile up in the queue
        plugins = small_plugins()
        assert submit_plugin(service, plugins[0])["state"] == "queued"
        assert submit_plugin(service, plugins[1])["state"] == "queued"
        code, body = service.submit(
            {"name": plugins[2].name, "files": dict(plugins[2].files)}
        )
        assert code == 429 and "capacity" in body["error"]
        assert service.stats.rejected == 1
        # resubmitting an already-queued digest coalesces, not rejects
        code, body = service.submit(
            {"name": plugins[0].name, "files": dict(plugins[0].files)}
        )
        assert code == 202 and body["coalesced"] is True

    def test_shutdown_drains_without_losing_jobs(self, tmp_path):
        plugins = small_plugins() * 3  # 12 submissions, mostly coalesced
        service = self.make_service(tmp_path, jobs=1)
        ids = [submit_plugin(service, plugin)["id"] for plugin in plugins]
        service.start()
        assert service.shutdown(timeout=30)
        states = {service.job_status(job_id)[1]["state"] for job_id in ids}
        # drained: nothing is mid-flight, nothing disappeared
        assert states <= {"done", "queued"}
        counts = service.queue.counts()
        assert counts["running"] == 0
        assert counts["done"] + counts["queued"] == len(set(ids))

    def test_restart_resumes_interrupted_work(self, tmp_path):
        plugins = small_plugins()[:2]
        first = self.make_service(tmp_path, jobs=1)
        ids = [submit_plugin(first, plugin)["id"] for plugin in plugins]
        # simulate a daemon crash mid-analysis: one job claimed, never
        # finished, process gone
        claimed = first.queue.claim()
        assert claimed.state == "running"
        first.close()

        second = AnalysisService(
            data_dir=str(tmp_path / "svc"), jobs=2, isolation="thread"
        )
        assert second.requeued == 1
        second.start()
        try:
            states = wait_done(second, ids)
            assert states == ["done", "done"]
        finally:
            second.shutdown()

    def test_worker_crash_fails_job_and_pool_survives(self, tmp_path):
        spec = ToolSpec(name="tests.test_service:CrashOnBomb")
        service = AnalysisService(
            data_dir=str(tmp_path / "svc"),
            spec=spec,
            jobs=1,
            isolation="process",
        )
        service.start()
        try:
            bomb = submit_plugin(
                service, Plugin(name="bomb", files={"index.php": "<?php 1;"})
            )
            innocent = submit_plugin(
                service, Plugin(name="ok", files={"index.php": "<?php 2;"})
            )
            states = wait_done(service, [bomb["id"], innocent["id"]], timeout=60)
            assert states == ["failed", "done"]
            code, status = service.job_status(bomb["id"])
            assert status["result"]["outcome"] == "crashed"
            incidents = status["result"]["report"]["incidents"]
            assert any(i["severity"] == "fatal" for i in incidents)
            assert service.pool.telemetry.worker_restarts >= 1
        finally:
            service.shutdown()

    def test_metrics_schema_v6(self, tmp_path):
        plugin = small_plugins()[0]
        service = self.make_service(tmp_path, jobs=1)
        service.start()
        try:
            job = submit_plugin(service, plugin)
            wait_done(service, [job["id"]])
            code, document = service.metrics()
            assert code == 200
            assert document["schema"] == SCHEMA == "repro.batch.telemetry/v7"
            assert document["service"]["completed"] == 1
            assert document["service"]["accepted"] == 1
            assert document["queue"]["done"] == 1
            (row,) = document["plugins"]
            assert row["queued_seconds"] >= 0
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_service(tmp_path):
    service = AnalysisService(
        data_dir=str(tmp_path / "svc"), jobs=2, isolation="thread"
    )
    server = BackgroundServer(service)
    host, port = server.start()

    def request(method, path, body=None):
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request(method, path, body=json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        document = json.loads(response.read().decode("utf-8"))
        conn.close()
        return response.status, document

    yield request
    server.stop()


class TestHttpServer:
    def test_healthz(self, http_service):
        code, body = http_service("GET", "/healthz")
        assert code == 200 and body["status"] == "ok" and body["accepting"]

    def test_submit_poll_sarif(self, http_service):
        code, body = http_service(
            "POST", "/v1/scans", {"name": "alpha", "files": {"index.php": VULN}}
        )
        assert code == 202
        job_id = body["id"]
        deadline = time.time() + 30
        while time.time() < deadline:
            code, status = http_service("GET", f"/v1/scans/{job_id}")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        assert len(status["result"]["report"]["findings"]) == 1
        code, sarif = http_service("GET", f"/v1/scans/{job_id}/sarif")
        assert code == 200 and sarif["version"] == "2.1.0"
        assert result_count(sarif) == 1

    def test_error_statuses(self, http_service):
        assert http_service("GET", "/v1/scans/unknown")[0] == 404
        assert http_service("GET", "/nowhere")[0] == 404
        assert http_service("POST", "/v1/scans", {"files": {}})[0] == 400
        assert http_service("POST", "/healthz", {})[0] == 405
        code, body = http_service(
            "POST", "/v1/scans", {"path": "/does/not/exist"}
        )
        assert code == 400

    def test_sarif_before_completion_conflicts(self, http_service, tmp_path):
        # pool is running, so race a fresh submission: claim may happen
        # fast — accept either 409 (still pending) or 200 (finished)
        code, body = http_service(
            "POST", "/v1/scans", {"name": "g", "files": {"i.php": VULN + " ?>x"}}
        )
        job_id = body["id"]
        code, _document = http_service("GET", f"/v1/scans/{job_id}/sarif")
        assert code in (200, 409)

    def test_metrics_over_http(self, http_service):
        code, document = http_service("GET", "/metrics")
        assert code == 200
        assert document["schema"] == "repro.batch.telemetry/v7"
        assert "service" in document and "queue" in document


# ---------------------------------------------------------------------------
# scoped perf counters
# ---------------------------------------------------------------------------


class TestScopedPerf:
    def test_scoped_delta_isolated_per_thread(self):
        from repro.perf import scoped

        deltas = {}

        def work(name, file_count):
            plugin = Plugin(
                name=name,
                files={
                    f"f{i}.php": f"<?php ${name}{i} = {i}; echo {i};"
                    for i in range(file_count)
                },
            )
            with scoped() as scope:
                PhpSafe().analyze(plugin)
            deltas[name] = scope.delta

        threads = [
            threading.Thread(target=work, args=("a", 5)),
            threading.Thread(target=work, args=("b", 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # each scope saw exactly its own thread's work, not the union
        assert deltas["a"]["files_parsed"] == 5
        assert deltas["b"]["files_parsed"] == 2

    def test_scope_report_merges_rates(self):
        from repro.perf import scoped

        with scoped() as scope:
            PhpSafe().analyze(Plugin(name="p", files={"i.php": VULN}))
        merged = scope.report()
        assert merged["files_parsed"] == 1
        assert "tokens_per_second" in merged

    def test_telemetry_service_section_optional(self):
        telemetry = ScanTelemetry(jobs=1)
        assert "service" not in telemetry.to_dict()
        telemetry.service = ServiceStats(completed=3, uptime_seconds=60.0)
        document = telemetry.to_dict()
        assert document["service"]["jobs_per_minute"] == 3.0

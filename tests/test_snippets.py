"""Unit tests for the corpus snippet templates.

Each template promises a detectability class (which tools find it,
whether the expert calls it a true vulnerability).  These tests verify
every promise directly on a minimal file, independent of the full
corpus calibration — if a template drifts, this pinpoints it.
"""

import pytest

from repro.baselines import PixyLike, RipsLike
from repro.config.vulnerability import InputVector, VulnKind
from repro.core import PhpSafe
from repro.corpus import snippets
from repro.plugin import Plugin

ALL_TOOLS = {"phpSAFE": PhpSafe, "RIPS": RipsLike, "Pixy": PixyLike}


def detectors_of(fragment, kind=None):
    """Which tools report a finding at the fragment's sink line."""
    source = "<?php\n" + "\n".join(fragment.lines) + "\n"
    sink_line = fragment.sink_offset + 2  # +1 for <?php, +1 for 1-basing
    plugin = Plugin(name="t", files={"t.php": source})
    found = set()
    for name, factory in ALL_TOOLS.items():
        report = factory().analyze(plugin)
        for finding in report.findings:
            if finding.line == sink_line and (kind is None or finding.kind is kind):
                found.add(name)
    return found


class TestVulnerableTemplates:
    def test_direct_echo_main_found_by_all(self):
        fragment = snippets.direct_echo_main("s1", InputVector.GET)
        assert detectors_of(fragment) == {"phpSAFE", "RIPS", "Pixy"}

    def test_direct_echo_uncalled_skips_pixy(self):
        fragment = snippets.direct_echo_uncalled("s2", InputVector.POST)
        assert detectors_of(fragment) == {"phpSAFE", "RIPS"}

    def test_file_read_uncalled_skips_pixy(self):
        fragment = snippets.file_read_echo_uncalled("s3")
        assert detectors_of(fragment) == {"phpSAFE", "RIPS"}

    def test_db_read_uncalled_is_rips_and_phpsafe(self):
        fragment = snippets.db_read_echo_uncalled("s4")
        assert detectors_of(fragment) == {"phpSAFE", "RIPS"}

    def test_wpdb_results_only_phpsafe(self):
        fragment = snippets.wpdb_results_echo("s5")
        assert detectors_of(fragment) == {"phpSAFE"}

    def test_property_flow_only_phpsafe(self):
        fragment = snippets.property_flow_class("s6", InputVector.COOKIE)
        assert detectors_of(fragment) == {"phpSAFE"}

    def test_wp_option_only_phpsafe(self):
        fragment = snippets.wp_option_echo("s7")
        assert detectors_of(fragment) == {"phpSAFE"}

    def test_wpdb_sqli_only_phpsafe(self):
        fragment = snippets.wpdb_query_sqli("s8", InputVector.GET)
        assert detectors_of(fragment, VulnKind.SQLI) == {"phpSAFE"}

    def test_register_globals_only_pixy(self):
        fragment = snippets.register_globals_echo("s9")
        assert detectors_of(fragment) == {"Pixy"}


class TestBaitTemplates:
    def test_guarded_echo_phpsafe_and_rips(self):
        fragment = snippets.fp_guarded_echo("b1", InputVector.POST)
        assert detectors_of(fragment) == {"phpSAFE", "RIPS"}

    def test_wpdb_internal_table_only_phpsafe(self):
        fragment = snippets.fp_wpdb_internal_table("b2")
        assert detectors_of(fragment) == {"phpSAFE"}

    def test_esc_html_only_rips(self):
        fragment = snippets.fp_esc_html_echo("b3", InputVector.GET)
        assert detectors_of(fragment) == {"RIPS"}

    def test_uninitialized_only_pixy(self):
        fragment = snippets.fp_uninitialized_pixy("b4")
        assert detectors_of(fragment) == {"Pixy"}

    def test_sqli_whitelist_only_phpsafe(self):
        fragment = snippets.fp_sqli_whitelist("b5")
        assert detectors_of(fragment, VulnKind.SQLI) == {"phpSAFE"}

    def test_sqli_absint_only_rips(self):
        fragment = snippets.fp_sqli_absint_rips("b6")
        assert detectors_of(fragment, VulnKind.SQLI) == {"RIPS"}


class TestNoiseTemplates:
    @pytest.mark.parametrize(
        "factory",
        [
            snippets.noise_helper_function,
            snippets.noise_sanitized_echo,
            snippets.noise_class,
            snippets.noise_loop_block,
            snippets.pixy_warning_block,
        ],
    )
    def test_noise_triggers_no_tool(self, factory):
        fragment = factory("n1")
        source = "<?php\n" + "\n".join(fragment.lines) + "\n"
        plugin = Plugin(name="t", files={"t.php": source})
        for name, tool in ALL_TOOLS.items():
            assert not tool().analyze(plugin).findings, name

    def test_pixy_fatal_block_fails_pixy_only(self):
        fragment = snippets.pixy_fatal_block("n2")
        source = "<?php\n" + "\n".join(fragment.lines) + "\n"
        plugin = Plugin(name="t", files={"t.php": source})
        assert PixyLike().analyze(plugin).failed_files == ["t.php"]
        assert not PhpSafe().analyze(plugin).failed_files
        assert not RipsLike().analyze(plugin).failed_files

    def test_pixy_warning_block_warns_but_completes(self):
        fragment = snippets.pixy_warning_block("n3")
        source = "<?php\n" + "\n".join(fragment.lines) + "\n"
        plugin = Plugin(name="t", files={"t.php": source})
        report = PixyLike().analyze(plugin)
        assert not report.failed_files
        assert report.error_count == 1

    def test_biglib_function_parses(self):
        from repro.php import parse_source

        fragment = snippets.biglib_function("lib", 7, "x" * 200)
        parse_source("<?php\n" + "\n".join(fragment.lines))


class TestFragmentContract:
    def test_sink_offsets_point_at_sinks(self):
        cases = [
            snippets.direct_echo_main("c1", InputVector.GET),
            snippets.direct_echo_uncalled("c2", InputVector.GET),
            snippets.wpdb_results_echo("c3"),
            snippets.wpdb_query_sqli("c4", InputVector.GET),
            snippets.fp_esc_html_echo("c5", InputVector.GET),
        ]
        for fragment in cases:
            sink_text = fragment.lines[fragment.sink_offset]
            assert "echo" in sink_text or "query" in sink_text

    def test_unique_ids_produce_unique_identifiers(self):
        one = snippets.direct_echo_main("id-a", InputVector.GET)
        two = snippets.direct_echo_main("id-b", InputVector.GET)
        assert one.lines != two.lines

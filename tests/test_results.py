"""Unit tests for findings, reports and the plugin container."""

import os

from repro.config.vulnerability import InputVector, VulnKind
from repro.core.results import FileFailure, Finding, ToolReport
from repro.plugin import Plugin


def finding(line=3, kind=VulnKind.XSS, file="a.php", **kwargs):
    return Finding(kind=kind, file=file, line=line, sink="echo", **kwargs)


class TestFinding:
    def test_key_identity(self):
        assert finding().key == ("xss", "a.php", 3)

    def test_primary_vector_prefers_lowest_tier(self):
        mixed = finding(vectors=(InputVector.DB, InputVector.GET))
        assert mixed.primary_vector is InputVector.GET
        db_only = finding(vectors=(InputVector.DB,))
        assert db_only.primary_vector is InputVector.DB
        assert finding().primary_vector is None

    def test_describe_contains_essentials(self):
        text = finding(vectors=(InputVector.GET,), variable="$x").describe()
        assert "XSS" in text and "a.php:3" in text and "GET" in text and "$x" in text


class TestToolReport:
    def test_add_finding_dedups_by_key(self):
        report = ToolReport(tool="t", plugin="p")
        assert report.add_finding(finding())
        assert not report.add_finding(finding(variable="different"))
        assert len(report.findings) == 1

    def test_different_kind_same_line_kept(self):
        report = ToolReport(tool="t", plugin="p")
        report.add_finding(finding())
        assert report.add_finding(finding(kind=VulnKind.SQLI))

    def test_findings_of(self):
        report = ToolReport(tool="t", plugin="p")
        report.add_finding(finding())
        report.add_finding(finding(kind=VulnKind.SQLI, line=9))
        assert len(report.findings_of(VulnKind.XSS)) == 1

    def test_failed_files_excludes_completed(self):
        report = ToolReport(tool="t", plugin="p")
        report.failures.append(FileFailure(file="a.php", reason="fatal"))
        report.failures.append(
            FileFailure(file="b.php", reason="warn", is_error=True, completed=True)
        )
        assert report.failed_files == ["a.php"]
        assert report.error_count == 1

    def test_merge(self):
        one = ToolReport(tool="t", plugin="p1", files_analyzed=2, loc_analyzed=10)
        one.add_finding(finding())
        two = ToolReport(tool="t", plugin="p2", files_analyzed=3, loc_analyzed=20)
        two.add_finding(finding())  # same key, but a *different* plugin
        two.add_finding(finding(line=99))
        merged = one.merged(two)
        assert len(merged.findings) == 3
        assert merged.files_analyzed == 5
        assert merged.loc_analyzed == 30

    def test_merged_keeps_cross_plugin_findings_sharing_file_names(self):
        """Regression: two plugins both shipping an ``index.php`` with a
        flaw at the same line used to collapse into one merged finding."""
        one = ToolReport(tool="t", plugin="plugin-a")
        one.add_finding(finding(file="index.php"))
        two = ToolReport(tool="t", plugin="plugin-b")
        two.add_finding(finding(file="index.php"))
        merged = one.merged(two)
        assert len(merged.findings) == 2
        assert sorted(f.plugin for f in merged.findings) == ["plugin-a", "plugin-b"]
        # per-plugin key semantics are untouched (truth matching uses it)
        assert merged.findings[0].key == merged.findings[1].key

    def test_merge_same_plugin_still_dedups(self):
        one = ToolReport(tool="t", plugin="p1")
        one.add_finding(finding())
        two = ToolReport(tool="t", plugin="p2")
        two.add_finding(finding(line=99))
        merged = one.merged(two)
        again = merged.merged(two)  # re-merging p2 must not double-count
        assert len(again.findings) == 2

    def test_chained_merge_preserves_provenance(self):
        reports = [ToolReport(tool="t", plugin=f"p{i}") for i in range(3)]
        for report in reports:
            report.add_finding(finding(file="index.php"))
        merged = reports[0].merged(reports[1]).merged(reports[2])
        assert len(merged.findings) == 3

    def test_add_finding_after_direct_assignment(self):
        # older call sites assign ``findings`` wholesale; the dedup index
        # must rebuild itself instead of trusting a stale set
        report = ToolReport(tool="t", plugin="p")
        report.findings = [finding()]
        assert not report.add_finding(finding())
        assert report.add_finding(finding(line=42))


class TestPlugin:
    def test_slug(self):
        assert Plugin(name="foo", version="1.2").slug == "foo@1.2"
        assert Plugin(name="foo").slug == "foo"

    def test_loc_and_file_count(self):
        plugin = Plugin(name="p", files={"a.php": "<?php\n$a = 1;\n"})
        assert plugin.file_count == 1
        assert plugin.loc == 2

    def test_iter_files_sorted(self):
        plugin = Plugin(name="p", files={"b.php": "2", "a.php": "1"})
        assert [path for path, _src in plugin.iter_files()] == ["a.php", "b.php"]

    def test_write_and_load_roundtrip(self, tmp_path):
        plugin = Plugin(
            name="demo",
            version="2.0",
            files={"demo.php": "<?php $a;\n", "inc/x.php": "<?php $b;\n"},
        )
        root = str(tmp_path)
        plugin_dir = plugin.write_to(root)
        assert os.path.isdir(plugin_dir)
        loaded = Plugin.load_from(plugin_dir, name="demo", version="2.0")
        assert loaded.files == plugin.files

    def test_load_ignores_non_php(self, tmp_path):
        (tmp_path / "readme.txt").write_text("hi")
        (tmp_path / "main.php").write_text("<?php $a;")
        loaded = Plugin.load_from(str(tmp_path))
        assert list(loaded.files) == ["main.php"]

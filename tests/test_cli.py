"""CLI tests (scan / compare / corpus / evaluate plumbing)."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture()
def vulnerable_file(tmp_path):
    path = tmp_path / "plugin.php"
    path.write_text("<?php echo $_GET['q'];\necho esc_html($_GET['ok']);\n")
    return str(path)


@pytest.fixture()
def plugin_dir(tmp_path):
    directory = tmp_path / "my-plugin"
    directory.mkdir()
    (directory / "main.php").write_text("<?php echo $_POST['x'];")
    (directory / "inc").mkdir()
    (directory / "inc" / "safe.php").write_text("<?php echo intval($_GET['n']);")
    return str(directory)


class TestScan:
    def test_scan_finds_vulnerability(self, vulnerable_file, capsys):
        code = main(["scan", vulnerable_file])
        out = capsys.readouterr().out
        assert code == 1  # findings -> nonzero exit
        assert "XSS" in out
        assert "1 finding(s)" in out

    def test_scan_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.php"
        path.write_text("<?php echo 'hi';")
        assert main(["scan", str(path)]) == 0

    def test_scan_directory(self, plugin_dir, capsys):
        main(["scan", plugin_dir])
        out = capsys.readouterr().out
        assert "main.php" in out

    def test_scan_with_rips_tool_reports_esc_html(self, vulnerable_file, capsys):
        main(["scan", vulnerable_file, "--tool", "rips"])
        out = capsys.readouterr().out
        assert "2 finding(s)" in out  # RIPS also flags the esc_html flow

    def test_scan_trace_output(self, vulnerable_file, capsys):
        main(["scan", vulnerable_file, "--trace"])
        out = capsys.readouterr().out
        assert "$_GET" in out

    def test_scan_no_oop_flag(self, tmp_path, capsys):
        path = tmp_path / "w.php"
        path.write_text("<?php $v = $wpdb->get_var('Q'); echo $v;")
        assert main(["scan", str(path)]) == 1
        assert main(["scan", str(path), "--no-oop"]) == 0

    def test_scan_no_ir_flag_same_findings(self, vulnerable_file, capsys):
        assert main(["scan", vulnerable_file, "--no-ir"]) == 1
        ast_out = capsys.readouterr().out
        assert main(["scan", vulnerable_file]) == 1
        ir_out = capsys.readouterr().out
        assert "1 finding(s)" in ast_out
        assert "1 finding(s)" in ir_out


@pytest.fixture()
def corpus_dir(tmp_path):
    """A directory of plugin directories (corpus checkout layout)."""
    root = tmp_path / "plugins"
    for name, source in (
        ("alpha", "<?php echo $_GET['a'];"),
        ("beta", "<?php echo esc_html($_GET['b']);"),
        ("gamma", "<?php echo $_COOKIE['c'];"),
    ):
        (root / name).mkdir(parents=True)
        (root / name / "index.php").write_text(source)
    return str(root)


class TestBatchScan:
    def test_directory_of_plugins_scans_as_batch(self, corpus_dir, capsys):
        code = main(["scan", corpus_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "batch of 3 plugin(s)" in out
        assert "alpha" in out and "beta" in out and "gamma" in out

    def test_parallel_findings_match_serial(self, corpus_dir, capsys):
        main(["scan", corpus_dir, "--jobs", "1"])
        serial_out = capsys.readouterr().out
        main(["scan", corpus_dir, "--jobs", "2"])
        parallel_out = capsys.readouterr().out

        def findings(text):
            return sorted(
                line.strip() for line in text.splitlines() if " at " in line
            )

        assert findings(serial_out) == findings(parallel_out)
        assert findings(serial_out)  # the corpus does have findings

    def test_warm_cache_telemetry(self, corpus_dir, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cold_path = str(tmp_path / "cold.json")
        warm_path = str(tmp_path / "warm.json")
        main(["scan", corpus_dir, "--cache-dir", cache_dir,
              "--telemetry", cold_path])
        main(["scan", corpus_dir, "--cache-dir", cache_dir,
              "--telemetry", warm_path])
        capsys.readouterr()
        with open(warm_path) as handle:
            warm = json.load(handle)
        assert warm["schema"] == "repro.batch.telemetry/v7"
        assert warm["cache"]["hit_rate"] > 0.9
        with open(cold_path) as handle:
            cold = json.load(handle)
        assert cold["findings"] == warm["findings"]

    def test_single_plugin_with_jobs_flag_uses_batch(self, plugin_dir, capsys):
        code = main(["scan", plugin_dir, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "batch of 1 plugin(s)" in out


class TestCompare:
    def test_compare_lists_all_tools(self, vulnerable_file, capsys):
        assert main(["compare", vulnerable_file]) == 0
        out = capsys.readouterr().out
        assert "phpSAFE" in out and "RIPS" in out and "Pixy" in out

    def test_compare_verbose(self, vulnerable_file, capsys):
        main(["compare", vulnerable_file, "-v"])
        assert "echo" in capsys.readouterr().out

    def test_compare_json_is_machine_readable(self, vulnerable_file, capsys):
        assert main(["compare", vulnerable_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["plugins"] == 1
        tools = {entry["tool"]: entry for entry in document["tools"]}
        assert {"phpSAFE", "RIPS", "Pixy"} <= set(tools)
        phpsafe = tools["phpSAFE"]
        assert phpsafe["xss"] >= 1
        assert phpsafe["seconds"] >= 0
        (finding,) = [f for f in phpsafe["findings"] if f["kind"] == "xss"][:1]
        assert finding["file"] and finding["line"] >= 1 and finding["sink"]

    def test_compare_json_with_jobs_and_cache(self, plugin_dir, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["compare", plugin_dir, "--json", "--jobs", "2",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["jobs"] == 2
        for cold_tool, warm_tool in zip(cold["tools"], warm["tools"]):
            assert cold_tool["findings"] == warm_tool["findings"]


class TestCorpusCommand:
    def test_corpus_generation_to_disk(self, tmp_path, capsys):
        outdir = str(tmp_path / "corpus")
        assert main(
            ["corpus", outdir, "--versions", "2012", "--scale", "0.02"]
        ) == 0
        version_dir = os.path.join(outdir, "2012")
        assert os.path.isdir(version_dir)
        manifest_path = os.path.join(version_dir, "ground-truth.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        vulnerable = [entry for entry in manifest if entry["vulnerable"]]
        assert len(vulnerable) == 394
        # the referenced files exist on disk
        sample = manifest[0]
        plugin_dirs = os.listdir(version_dir)
        assert any(sample["plugin"] in name for name in plugin_dirs)


class TestParser:
    def test_unknown_tool_rejected(self, vulnerable_file):
        with pytest.raises(SystemExit):
            main(["scan", vulnerable_file, "--tool", "fortify"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportCommand:
    def test_json_report(self, vulnerable_file, capsys):
        assert main(["report", vulnerable_file, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "phpSAFE"
        assert document["findings"]

    def test_html_report_to_file(self, vulnerable_file, tmp_path, capsys):
        out = str(tmp_path / "report.html")
        assert main(["report", vulnerable_file, "--format", "html", "--out", out]) == 0
        content = open(out).read()
        assert content.startswith("<!DOCTYPE html>")

    def test_text_report_default(self, vulnerable_file, capsys):
        main(["report", vulnerable_file])
        assert "fix:" in capsys.readouterr().out

    def test_sarif_report(self, vulnerable_file, capsys):
        assert main(["report", vulnerable_file, "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "phpSAFE"
        assert run["results"][0]["ruleId"] == "phpsafe/xss"


class TestConfirmCommand:
    def test_confirm_vulnerable(self, vulnerable_file, capsys):
        code = main(["confirm", vulnerable_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "confirmed" in out

    def test_confirm_clean(self, tmp_path, capsys):
        path = tmp_path / "ok.php"
        path.write_text("<?php echo 'hi';")
        assert main(["confirm", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out


class TestFixCommand:
    def test_fix_prints_verified_proposals(self, vulnerable_file, capsys):
        assert main(["fix", vulnerable_file]) == 0
        out = capsys.readouterr().out
        assert "[verified]" in out and "esc_html" in out

    def test_fix_writes_patched_plugin(self, plugin_dir, tmp_path, capsys):
        out = str(tmp_path / "patched")
        assert main(["fix", plugin_dir, "--out", out]) == 0
        import glob
        patched_files = glob.glob(os.path.join(out, "**", "*.php"), recursive=True)
        assert patched_files
        assert any("esc_html" in open(f).read() for f in patched_files)


class TestApproveCommand:
    def test_vulnerable_rejected(self, vulnerable_file, capsys):
        assert main(["approve", vulnerable_file]) == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_lenient_policy_approves(self, vulnerable_file, capsys):
        assert main(["approve", vulnerable_file, "--max-xss", "5"]) == 0
        assert "APPROVED" in capsys.readouterr().out


class TestBaselineGate:
    def export_baseline(self, target, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.sarif")
        assert main(["report", target, "--format", "sarif", "--out", baseline]) == 0
        capsys.readouterr()  # drain
        return baseline

    def test_unchanged_scan_passes_fail_on_new(
        self, vulnerable_file, tmp_path, capsys
    ):
        baseline = self.export_baseline(vulnerable_file, tmp_path, capsys)
        code = main(
            ["scan", vulnerable_file, "--baseline", baseline, "--fail-on", "new"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new" in out and "1 unchanged" in out

    def test_unchanged_scan_still_fails_on_any(
        self, vulnerable_file, tmp_path, capsys
    ):
        baseline = self.export_baseline(vulnerable_file, tmp_path, capsys)
        assert main(["scan", vulnerable_file, "--baseline", baseline]) == 1

    def test_new_finding_fails_fail_on_new(self, vulnerable_file, tmp_path, capsys):
        baseline = self.export_baseline(vulnerable_file, tmp_path, capsys)
        with open(vulnerable_file, "a") as handle:
            handle.write("echo $_COOKIE['fresh'];\n")
        code = main(
            ["scan", vulnerable_file, "--baseline", baseline, "--fail-on", "new"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "1 new" in out

    def test_fail_on_new_without_baseline_degenerates_to_any(
        self, vulnerable_file
    ):
        assert main(["scan", vulnerable_file, "--fail-on", "new"]) == 1

    def test_report_baseline_marks_states(self, vulnerable_file, tmp_path, capsys):
        baseline = self.export_baseline(vulnerable_file, tmp_path, capsys)
        assert main(["report", vulnerable_file, "--format", "sarif",
                     "--baseline", baseline]) == 0
        document = json.loads(capsys.readouterr().out)
        states = [
            result["baselineState"]
            for run in document["runs"]
            for result in run["results"]
        ]
        assert states == ["unchanged"]

    def test_report_baseline_requires_sarif(self, vulnerable_file, tmp_path, capsys):
        baseline = self.export_baseline(vulnerable_file, tmp_path, capsys)
        with pytest.raises(SystemExit):
            main(["report", vulnerable_file, "--baseline", baseline])

    def test_missing_baseline_file_is_an_error(self, vulnerable_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["scan", vulnerable_file, "--baseline",
                  str(tmp_path / "missing.sarif"), "--fail-on", "new"])


class TestHistoryCommand:
    def test_record_diff_evolution_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "history.json")
        plugin = tmp_path / "demo"
        plugin.mkdir()
        source = plugin / "demo.php"
        source.write_text(
            "<?php\necho $_GET['m'];\n$wpdb->query('D' . $_GET['id']);\n"
        )
        assert main(["history", "record", str(plugin), "--store", store,
                     "--version", "1.0", "--date", "2012-11-01"]) == 0
        assert "recorded" in capsys.readouterr().out
        source.write_text(
            "<?php\necho esc_html($_GET['m']);\n$wpdb->query('D' . $_GET['id']);\n"
        )
        assert main(["history", "record", str(plugin), "--store", store,
                     "--version", "2.0", "--date", "2014-11-01"]) == 0
        out = capsys.readouterr().out
        assert "+0 new" in out and "-1 fixed" in out
        # diff of the archived pair: one fixed, nothing introduced -> 0
        assert main(["history", "diff", "demo", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "-1 fixed" in out and "  - xss" in out
        assert main(["history", "evolution", "demo", "--store", store]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and "1.0" in lines[0] and "2.0" in lines[1]

    def test_diff_flags_regression(self, tmp_path, capsys):
        store = str(tmp_path / "history.json")
        plugin = tmp_path / "p"
        plugin.mkdir()
        source = plugin / "p.php"
        source.write_text("<?php echo esc_html($_GET['m']);\n")
        main(["history", "record", str(plugin), "--store", store,
              "--version", "1.0", "--date", "2012-01-01"])
        source.write_text("<?php echo $_GET['m'];\n")
        main(["history", "record", str(plugin), "--store", store,
              "--version", "2.0", "--date", "2014-01-01"])
        capsys.readouterr()
        assert main(["history", "diff", "p", "--store", store]) == 1
        assert "+1 new" in capsys.readouterr().out

    def test_diff_requires_two_scans(self, tmp_path, capsys):
        store = str(tmp_path / "history.json")
        plugin = tmp_path / "solo"
        plugin.mkdir()
        (plugin / "p.php").write_text("<?php echo $_GET['m'];\n")
        main(["history", "record", str(plugin), "--store", store,
              "--version", "1.0", "--date", "2012-01-01"])
        capsys.readouterr()
        assert main(["history", "diff", "solo", "--store", store]) == 1
        assert "fewer than two" in capsys.readouterr().out

    def test_approve_with_history_blocks_regression(self, tmp_path, capsys):
        store = str(tmp_path / "history.json")
        plugin = tmp_path / "gate"
        plugin.mkdir()
        source = plugin / "p.php"
        source.write_text("<?php echo esc_html($_GET['m']);\n")
        main(["history", "record", str(plugin), "--store", store,
              "--version", "1.0", "--date", "2012-01-01"])
        capsys.readouterr()
        source.write_text("<?php echo $_GET['m'];\n")
        code = main(["approve", str(plugin), "--max-xss", "5", "--history", store])
        out = capsys.readouterr().out
        assert code == 1
        assert "new finding(s)" in out

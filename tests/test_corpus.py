"""Tests for the corpus catalog and generator."""

import pytest

from repro.config.vulnerability import InputVector, VulnKind
from repro.corpus import PLUGINS, build_corpus, build_specs
from repro.corpus.catalog import (
    ALLOCATION_2012,
    ALLOCATION_2014,
    CARRIED,
    FAILED_FILES_2014,
    OOP_VULN_PLUGINS_2012,
    OOP_VULN_PLUGINS_2014,
)
from repro.corpus.spec import REGION_DETECTORS, VULNERABLE_REGIONS
from repro.php import parse_source


class TestCatalog:
    def test_thirty_five_plugins_nineteen_oop(self):
        assert len(PLUGINS) == 35
        assert sum(1 for p in PLUGINS if p.is_oop) == 19

    def test_paper_example_plugins_present(self):
        slugs = {p.slug for p in PLUGINS}
        for name in (
            "mail-subscribe-list",
            "wp-symposium",
            "wp-photo-album-plus",
            "qtranslate",
        ):
            assert name in slugs

    def test_oop_vuln_plugin_counts(self):
        assert len(OOP_VULN_PLUGINS_2012) == 10
        assert len(OOP_VULN_PLUGINS_2014) == 7
        assert set(OOP_VULN_PLUGINS_2014) <= set(OOP_VULN_PLUGINS_2012)

    def test_distinct_vulnerability_totals(self):
        def total(allocation):
            return sum(
                count
                for region, vectors in allocation.items()
                if region in VULNERABLE_REGIONS
                for count in vectors.values()
            )

        assert total(ALLOCATION_2012) == 394
        assert total(ALLOCATION_2014) == 586

    def test_carried_within_both_allocations(self):
        for region, vectors in CARRIED.items():
            for vector, count in vectors.items():
                assert count <= ALLOCATION_2012[region].get(vector, 0)
                assert count <= ALLOCATION_2014[region].get(vector, 0)

    def test_every_region_has_detectors(self):
        for allocation in (ALLOCATION_2012, ALLOCATION_2014):
            for region in allocation:
                assert region in REGION_DETECTORS


class TestSpecs:
    def test_spec_counts(self):
        specs12 = build_specs("2012")
        specs14 = build_specs("2014")
        assert sum(1 for s in specs12 if s.is_vulnerable) == 394
        assert sum(1 for s in specs14 if s.is_vulnerable) == 586

    def test_spec_ids_unique(self):
        specs = build_specs("2014")
        assert len({s.spec_id for s in specs}) == len(specs)

    def test_carried_ids_shared_across_versions(self):
        carried12 = {s.spec_id for s in build_specs("2012") if s.carried}
        carried14 = {s.spec_id for s in build_specs("2014") if s.carried}
        assert carried12 == carried14
        assert all(spec_id.startswith("c-") for spec_id in carried12)

    def test_sqli_regions_kind(self):
        for spec in build_specs("2012"):
            if spec.region in ("e_sqli", "fp_sqli_ps", "fp_sqli_rips"):
                assert spec.kind is VulnKind.SQLI
            else:
                assert spec.kind is VulnKind.XSS

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            build_specs("2016")


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("2014", scale=0.05)


class TestGenerator:
    def test_deterministic(self):
        one = build_corpus("2012", scale=0.05)
        two = build_corpus("2012", scale=0.05)
        assert [p.files for p in one.plugins] == [p.files for p in two.plugins]

    def test_file_count_targets(self, corpus):
        assert corpus.total_files == 356
        assert build_corpus("2012", scale=0.05).total_files == 266

    def test_all_files_parse(self, corpus):
        for plugin in corpus.plugins:
            for path, source in plugin.iter_files():
                parse_source(source, path)  # must not raise

    def test_ground_truth_lines_hold_sinks(self, corpus):
        """Every manifest entry points at a line containing its sink."""
        sink_markers = {
            VulnKind.XSS: ("echo", "print"),
            VulnKind.SQLI: ("query", "mysql_query"),
        }
        for entry in corpus.truth.entries:
            plugin = corpus.plugin(entry.plugin)
            lines = plugin.files[entry.file].splitlines()
            line_text = lines[entry.line - 1]
            assert any(
                marker in line_text for marker in sink_markers[entry.spec.kind]
            ), (entry.spec.spec_id, line_text)

    def test_oop_specs_confined_to_oop_plugins(self, corpus):
        for entry in corpus.truth.entries:
            if entry.spec.region in ("e_oop", "e_sqli"):
                assert entry.plugin in OOP_VULN_PLUGINS_2014

    def test_failed_file_specs_in_failed_files(self, corpus):
        failed = set(FAILED_FILES_2014)
        for entry in corpus.truth.entries:
            if entry.spec.region in ("d", "f"):
                assert (entry.plugin, entry.file) in failed

    def test_carried_specs_same_plugin_both_versions(self, corpus):
        older = build_corpus("2012", scale=0.05)
        older_places = {
            e.spec.spec_id: e.plugin for e in older.truth.entries if e.spec.carried
        }
        for entry in corpus.truth.entries:
            if entry.spec.carried:
                assert older_places[entry.spec.spec_id] == entry.plugin

    def test_scale_changes_loc_not_truth(self):
        small = build_corpus("2012", scale=0.05)
        large = build_corpus("2012", scale=0.2)
        assert large.total_loc > small.total_loc
        assert len(small.truth.entries) == len(large.truth.entries)

    def test_lookup_by_location(self, corpus):
        entry = corpus.truth.entries[0]
        found = corpus.truth.lookup(
            entry.plugin, entry.spec.kind.value, entry.file, entry.line
        )
        assert found is entry
        assert corpus.truth.lookup(entry.plugin, "xss", "nope.php", 1) is None

    def test_vulnerable_and_bait_partition(self, corpus):
        vulnerable = list(corpus.truth.vulnerabilities())
        baits = list(corpus.truth.baits())
        assert len(vulnerable) == 586
        assert len(vulnerable) + len(baits) == len(corpus.truth.entries)

    def test_plugin_versions_differ_between_snapshots(self):
        older = build_corpus("2012", scale=0.05)
        newer = build_corpus("2014", scale=0.05)
        assert older.plugins[0].version != newer.plugins[0].version

"""Tests for the review exporters and the history/approval module."""

import json

from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe
from repro.core.review import coverage_summary, fix_hint, to_html, to_json, to_text
from repro.history import (
    ApprovalPolicy,
    HistoryStore,
    ScanRecord,
    diff_scans,
)
from repro.plugin import Plugin

VULN_SOURCE = """<?php
echo '<p>' . $_GET['m'] . '</p>';
$wpdb->query("D WHERE id = " . $_GET['id']);
function hook_cb() { echo $_POST['x']; }
"""

FIXED_SOURCE = """<?php
echo '<p>' . esc_html($_GET['m']) . '</p>';
$wpdb->query($wpdb->prepare("D WHERE id = %d", $_GET['id']));
function hook_cb() { echo $_POST['x']; }
"""


def scan(source, version="1.0", name="demo"):
    plugin = Plugin(name=name, version=version, files={"demo.php": source})
    report = PhpSafe().analyze(plugin)
    return plugin, report


class TestExporters:
    def test_json_schema(self):
        _plugin, report = scan(VULN_SOURCE)
        document = json.loads(to_json(report))
        assert document["tool"] == "phpSAFE"
        assert len(document["findings"]) == 3
        first = document["findings"][0]
        assert {"kind", "file", "line", "sink", "vectors", "trace", "fix_hint"} <= set(
            first
        )

    def test_json_orders_by_severity(self):
        _plugin, report = scan(VULN_SOURCE)
        document = json.loads(to_json(report))
        assert document["findings"][0]["kind"] == "sqli"

    def test_text_contains_fix_hints(self):
        _plugin, report = scan(VULN_SOURCE)
        text = to_text(report)
        assert "prepare()" in text and "esc_html()" in text

    def test_html_page_self_contained(self):
        plugin, report = scan(VULN_SOURCE)
        page = to_html(report, plugin)
        assert page.startswith("<!DOCTYPE html>")
        assert "SQLI" in page and "XSS" in page
        assert "demo.php:2" in page
        # source snippet around the sink is embedded
        assert "$_GET[&#x27;m&#x27;]" in page or "$_GET" in page

    def test_html_escapes_payloads(self):
        plugin, report = scan("<?php echo $_GET['<script>'];")
        page = to_html(report, plugin)
        assert "<script>" not in page.split("<style>")[1]

    def test_html_without_findings(self):
        plugin, report = scan("<?php echo 'safe';")
        assert "No vulnerabilities detected" in to_html(report, plugin)

    def test_fix_hints_per_kind(self):
        from repro.core.results import Finding

        hints = {
            VulnKind.XSS: "esc_html",
            VulnKind.SQLI: "prepare",
            VulnKind.CMDI: "escapeshellarg",
            VulnKind.LFI: "basename",
        }
        for kind, expected in hints.items():
            finding = Finding(kind=kind, file="f.php", line=1, sink="s")
            assert expected in fix_hint(finding)

    def test_coverage_summary(self):
        plugin, _report = scan(VULN_SOURCE)
        summary = coverage_summary(plugin)
        assert summary["files"] == 1
        assert summary["functions"] == 1
        assert summary["entry_points_never_called"] == 1
        assert summary["acyclic_paths"] >= 1


class TestHistory:
    def test_record_and_diff(self):
        store = HistoryStore()
        _p1, report1 = scan(VULN_SOURCE, "1.0")
        _p2, report2 = scan(FIXED_SOURCE, "2.0")
        store.record(report1, version="1.0", scanned_at="2012-11-01")
        store.record(report2, version="2.0", scanned_at="2014-11-01")
        diff = store.diff_latest("demo")
        assert diff is not None
        assert len(diff.fixed) == 2  # the reflected XSS and the SQLi
        assert len(diff.persistent) == 1  # hook_cb() never fixed
        assert not diff.introduced
        assert "persistent" in diff.summary()

    def test_persistence_share(self):
        _p1, report1 = scan(VULN_SOURCE, "1.0")
        _p2, report2 = scan(VULN_SOURCE, "2.0")
        older = ScanRecord.from_report(report1, "1.0", "2012-11-01")
        newer = ScanRecord.from_report(report2, "2.0", "2014-11-01")
        diff = diff_scans(older, newer)
        assert diff.persistence_share == 1.0  # nothing fixed at all

    def test_evolution_series(self):
        store = HistoryStore()
        for version, source in (("1.0", VULN_SOURCE), ("2.0", FIXED_SOURCE)):
            _p, report = scan(source, version)
            store.record(report, version=version, scanned_at="2014-01-01")
        assert store.evolution("demo") == [("1.0", 3), ("2.0", 1)]

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "history.json")
        store = HistoryStore(path)
        _p, report = scan(VULN_SOURCE, "1.0")
        store.record(report, version="1.0", scanned_at="2012-11-01")
        store.save()
        reloaded = HistoryStore(path)
        assert reloaded.plugins() == ["demo"]
        assert reloaded.latest("demo").count() == 3

    def test_diff_requires_two_scans(self):
        store = HistoryStore()
        _p, report = scan(VULN_SOURCE)
        store.record(report, version="1.0", scanned_at="2012-11-01")
        assert store.diff_latest("demo") is None

    def test_duplicate_findings_diff_as_multiset(self):
        # two identical sinks on different lines share one finding key;
        # fixing one of them is one fixed + one persistent, not "no
        # change" (set semantics would collapse the pair)
        duplicated = "<?php\necho $_GET['m'];\necho $_GET['m'];\n"
        single = "<?php\necho $_GET['m'];\n"
        _p1, report1 = scan(duplicated, "1.0")
        _p2, report2 = scan(single, "2.0")
        older = ScanRecord.from_report(report1, "1.0", "2012-11-01")
        newer = ScanRecord.from_report(report2, "2.0", "2014-11-01")
        assert len(older.findings) == 2
        diff = diff_scans(older, newer)
        assert len(diff.fixed) == 1
        assert len(diff.persistent) == 1
        assert not diff.introduced
        # and the reverse direction: duplicating a finding introduces one
        reverse = diff_scans(newer, older)
        assert len(reverse.introduced) == 1
        assert len(reverse.persistent) == 1
        assert not reverse.fixed

    def test_out_of_order_recording_sorts_by_date(self):
        # backfilling an older scan after a newer one must not make
        # latest()/diff_latest() compare the wrong pair
        store = HistoryStore()
        _p2, report2 = scan(FIXED_SOURCE, "2.0")
        _p1, report1 = scan(VULN_SOURCE, "1.0")
        store.record(report2, version="2.0", scanned_at="2014-11-01")
        store.record(report1, version="1.0", scanned_at="2012-11-01")
        assert store.latest("demo").version == "2.0"
        diff = store.diff_latest("demo")
        assert (diff.older.version, diff.newer.version) == ("1.0", "2.0")
        assert len(diff.fixed) == 2 and not diff.introduced

    def test_reloaded_store_sorts_hand_edited_archive(self, tmp_path):
        # an archive written newest-first (hand-edited or by an older
        # version) is re-sorted chronologically on load
        path = str(tmp_path / "history.json")
        store = HistoryStore(path)
        _p2, report2 = scan(FIXED_SOURCE, "2.0")
        _p1, report1 = scan(VULN_SOURCE, "1.0")
        store.record(report2, version="2.0", scanned_at="2014-11-01")
        store.record(report1, version="1.0", scanned_at="2012-11-01")
        store.save()
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        raw["demo"].reverse()  # newest first on disk
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        reloaded = HistoryStore(path)
        assert reloaded.latest("demo").version == "2.0"


class TestApproval:
    def test_vulnerable_plugin_rejected(self):
        _p, report = scan(VULN_SOURCE, "1.0")
        record = ScanRecord.from_report(report, "1.0", "2014-01-01")
        decision = ApprovalPolicy().evaluate(record)
        assert not decision.approved
        assert any("SQLi" in reason for reason in decision.reasons)
        assert "REJECTED" in str(decision)

    def test_clean_plugin_approved(self):
        _p, report = scan("<?php echo esc_html($_GET['q']);", "1.0")
        record = ScanRecord.from_report(report, "1.0", "2014-01-01")
        decision = ApprovalPolicy().evaluate(record)
        assert decision.approved

    def test_lenient_policy(self):
        _p, report = scan("<?php echo $_GET['q'];", "1.0")
        record = ScanRecord.from_report(report, "1.0", "2014-01-01")
        assert not ApprovalPolicy().evaluate(record).approved
        assert ApprovalPolicy(max_xss=5).evaluate(record).approved

    def test_failed_files_block_approval(self):
        from repro.core import PhpSafeOptions

        # strict mode skips the unparseable file instead of recovering
        plugin = Plugin(name="p", version="1", files={"bad.php": "<?php $a = ;"})
        report = PhpSafe(options=PhpSafeOptions(recover=False)).analyze(plugin)
        record = ScanRecord.from_report(report, "1", "2014-01-01")
        decision = ApprovalPolicy().evaluate(record)
        assert not decision.approved
        assert any("could not be analyzed" in reason for reason in decision.reasons)

    def test_regression_blocks_approval(self):
        _p1, clean = scan("<?php echo 'ok';", "1.0")
        _p2, vuln = scan("<?php echo $_GET['q'];", "2.0")
        older = ScanRecord.from_report(clean, "1.0", "2012-01-01")
        newer = ScanRecord.from_report(vuln, "2.0", "2014-01-01")
        decision = ApprovalPolicy(max_xss=5).evaluate(newer, previous=older)
        assert not decision.approved
        assert any("new finding" in reason for reason in decision.reasons)

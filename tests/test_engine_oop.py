"""Engine behaviour: OOP support (paper Section III.E)."""

from repro.config.vulnerability import InputVector, VulnKind
from repro.core import PhpSafe, PhpSafeOptions

from tests.helpers import findings_of


def xss(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.XSS]


def sqli(source, tool=None):
    return [f for f in findings_of(source, tool) if f.kind is VulnKind.SQLI]


class TestWpdbObject:
    def test_paper_example_mail_subscribe_list(self):
        """The paper's Section III.E example, almost verbatim."""
        source = (
            "<?php\n"
            'global $wpdb;\n'
            '$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");\n'
            "foreach ($results as $row) {\n"
            "    echo '<td>' . $row->sml_name . '</td>';\n"
            "}\n"
        )
        found = xss(source)
        assert len(found) == 1
        assert found[0].vectors == (InputVector.DB,)
        assert found[0].via_oop

    def test_wpdb_without_global_at_main(self):
        # $wpdb is a known WordPress instance even unassigned
        assert xss("<?php $v = $wpdb->get_var('SELECT x'); echo $v;")

    def test_wpdb_query_sink(self):
        found = sqli("<?php $wpdb->query('DELETE WHERE x=' . $_GET['id']);")
        assert found and found[0].via_oop

    def test_wpdb_get_results_sink_and_source(self):
        # get_results is both a SQLi sink (arg) and a DB source (return)
        source = "<?php $r = $wpdb->get_results('SELECT ' . $_GET['c']); echo $r;"
        assert sqli(source)
        assert xss(source)

    def test_wpdb_prepare_is_sqli_filter(self):
        source = (
            "<?php $wpdb->query($wpdb->prepare('SELECT %s', $_GET['x']));"
        )
        assert not sqli(source)

    def test_oop_disabled_misses_wpdb(self):
        tool = PhpSafe(options=PhpSafeOptions(oop=False))
        source = "<?php $r = $wpdb->get_var('Q'); echo $r;"
        assert not xss(source, tool)


class TestUserClasses:
    def test_property_flow_between_methods(self):
        source = (
            "<?php class W {\n"
            "  public $data;\n"
            "  public function collect() { $this->data = $_COOKIE['p']; }\n"
            "  public function render() { echo $this->data; }\n"
            "}\n"
        )
        found = xss(source)
        assert len(found) == 1
        assert found[0].vectors == (InputVector.COOKIE,)
        assert found[0].via_oop

    def test_clean_property_no_finding(self):
        source = (
            "<?php class W { public $v;\n"
            "  public function a() { $this->v = 'safe'; }\n"
            "  public function b() { echo $this->v; } }\n"
        )
        assert not xss(source)

    def test_method_call_with_tainted_argument(self):
        source = (
            "<?php class W { public function show($v) { echo $v; } }\n"
            "$w = new W(); $w->show($_GET['x']);"
        )
        assert xss(source)

    def test_method_return_flow(self):
        source = (
            "<?php class W { public function raw() { return $_GET['x']; } }\n"
            "$w = new W(); echo $w->raw();"
        )
        assert xss(source)

    def test_constructor_flow(self):
        source = (
            "<?php class W { public $v;\n"
            "  public function __construct($x) { $this->v = $x; }\n"
            "  public function show() { echo $this->v; } }\n"
            "$w = new W($_POST['i']); $w->show();"
        )
        assert xss(source)

    def test_php4_style_constructor(self):
        source = (
            "<?php class Legacy { public $v;\n"
            "  public function Legacy($x) { $this->v = $x; }\n"
            "  public function show() { echo $this->v; } }\n"
            "$l = new Legacy($_GET['x']); $l->show();"
        )
        assert xss(source)

    def test_inherited_method_resolved(self):
        source = (
            "<?php class Base { public function show($v) { echo $v; } }\n"
            "class Child extends Base {}\n"
            "$c = new Child(); $c->show($_GET['x']);"
        )
        assert xss(source)

    def test_parent_property_shared(self):
        source = (
            "<?php class Base { public $buf;\n"
            "  public function fill() { $this->buf = $_GET['x']; } }\n"
            "class Child extends Base {\n"
            "  public function flush() { echo $this->buf; } }\n"
        )
        # object-insensitive property store joins the hierarchy;
        # a Child's $buf read resolves through the parent's write
        found = findings_of(source)
        assert found  # must connect the flow

    def test_static_method_call(self):
        source = (
            "<?php class U { public static function put($v) { echo $v; } }\n"
            "U::put($_GET['x']);"
        )
        assert xss(source)

    def test_static_property_flow(self):
        source = (
            "<?php class C { public static $shared; }\n"
            "C::$shared = $_GET['x']; echo C::$shared;"
        )
        assert xss(source)

    def test_self_static_call(self):
        source = (
            "<?php class C {\n"
            "  public function outer() { self::inner($_GET['x']); }\n"
            "  public static function inner($v) { echo $v; } }\n"
            "$c = new C(); $c->outer();"
        )
        assert xss(source)

    def test_untyped_object_property_propagates_container(self):
        # a DB row object: property reads carry the row's taint
        source = (
            "<?php $row = mysql_fetch_object($r); echo $row->title;"
        )
        assert xss(source)

    def test_method_on_unknown_object_clean(self):
        assert not xss("<?php echo $mystery->render();")

    def test_sanitizing_method(self):
        source = (
            "<?php class W { public function safe($v) { return esc_html($v); } }\n"
            "$w = new W(); echo $w->safe($_GET['x']);"
        )
        assert not xss(source)

    def test_trait_method_resolved(self):
        source = (
            "<?php trait Output { public function put($v) { echo $v; } }\n"
            "class C { use Output; }\n"
            "$c = new C(); $c->put($_GET['x']);"
        )
        assert xss(source)


class TestViaOopFlag:
    def test_procedural_flow_not_flagged(self):
        found = xss("<?php echo $_GET['x'];")
        assert found and not found[0].via_oop

    def test_wordpress_function_source_not_flagged(self):
        # get_option is a plain function: WordPress-specific but not OOP
        found = xss("<?php $v = get_option('k'); echo $v;")
        assert found and not found[0].via_oop

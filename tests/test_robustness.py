"""Fault-tolerant pipeline tests (paper Section V.E robustness work).

Covers the three recovery layers — lexer repair, parser panic-mode
resynchronization, per-unit engine isolation — and the typed incident
taxonomy threaded through :class:`ToolReport` and the batch telemetry.
"""

import os

import pytest

from repro.batch import BatchOptions, BatchScanner, ToolSpec
from repro.batch.diskcache import DiskModelCache
from repro.core import (
    Incident,
    IncidentSeverity,
    IncidentStage,
    PhpSafe,
    PhpSafeOptions,
)
from repro.core.engine import EngineOptions
from repro.core.model import PluginModel
from repro.php import PhpParseError, parse_source
from repro.php import ast_nodes as ast
from repro.php.lexer import Lexer
from repro.php.printer import print_file
from repro.plugin import Plugin

BROKEN_MIDDLE = """<?php
echo $_GET['a'];
$x = ;
echo $_GET['b'];
"""


def analyze(source, **options):
    return PhpSafe(options=PhpSafeOptions(**options)).analyze_source(
        source, "demo.php"
    )


class TestParserRecovery:
    def test_findings_before_and_after_bad_statement(self):
        """The acceptance regression: one unparseable statement must not
        swallow the tainted ``echo`` on either side of it."""
        report = analyze(BROKEN_MIDDLE)
        lines = sorted(finding.line for finding in report.findings)
        assert lines == [2, 4]
        assert report.failed_files == []  # recovered, not skipped
        recovered = [i for i in report.incidents if i.recovered]
        assert len(recovered) == 1
        assert recovered[0].stage is IncidentStage.PARSE
        assert recovered[0].severity is IncidentSeverity.WARNING
        assert recovered[0].file == "demo.php"
        assert recovered[0].line == 3

    def test_strict_mode_reproduces_historical_behavior(self):
        report = analyze(BROKEN_MIDDLE, recover=False)
        assert report.findings == []
        assert report.failed_files == ["demo.php"]
        assert report.files_skipped == 1
        assert report.loc_skipped > 0
        (incident,) = report.incidents
        assert not incident.recovered
        assert incident.severity is IncidentSeverity.ERROR

    def test_error_stmt_carries_span(self):
        tree = parse_source(BROKEN_MIDDLE, recover=True)
        kinds = [type(stmt).__name__ for stmt in tree.statements]
        assert kinds == ["EchoStatement", "ErrorStmt", "EchoStatement"]
        error = tree.statements[1]
        assert error.line == 3
        assert error.tokens_skipped > 0
        assert "unexpected" in error.reason or error.reason

    def test_strict_parse_still_raises(self):
        with pytest.raises(PhpParseError):
            parse_source(BROKEN_MIDDLE)

    def test_recovery_inside_function_body(self):
        source = """<?php
function cb() {
    $x = ;
    echo $_POST['y'];
}
"""
        report = analyze(source)
        assert any(f.line == 4 for f in report.findings)
        assert any(i.recovered for i in report.incidents)

    def test_brace_left_for_caller(self):
        # the bad statement is the last one in the block: recovery must
        # stop at the closing brace so the enclosing if still parses
        source = "<?php\nif ($a) { $x = ; }\necho $_GET['q'];\n"
        report = analyze(source)
        assert any(f.line == 3 for f in report.findings)

    def test_printer_renders_error_stmt(self):
        tree = parse_source(BROKEN_MIDDLE, recover=True)
        rendered = print_file(tree)
        assert "parse error (recovered)" in rendered

    def test_error_stmt_is_statement(self):
        node = ast.ErrorStmt(line=3, reason="boom", end_line=3, tokens_skipped=2)
        assert isinstance(node, ast.Statement)


class TestLexerRecovery:
    def test_unterminated_single_quote(self):
        source = "<?php\necho $_GET['x'];\n$s = 'oops"
        report = analyze(source)
        assert any(f.line == 2 for f in report.findings)
        assert any(
            i.stage is IncidentStage.LEX and i.recovered for i in report.incidents
        )

    def test_unterminated_double_quote(self):
        report = analyze('<?php\necho $_GET["x"];\n$s = "oops')
        assert any(f.line == 2 for f in report.findings)
        assert any(i.stage is IncidentStage.LEX for i in report.incidents)

    def test_unterminated_heredoc(self):
        source = "<?php\necho $_GET['x'];\n$h = <<<EOT\nno terminator"
        report = analyze(source)
        assert any(f.line == 2 for f in report.findings)
        assert any(i.stage is IncidentStage.LEX for i in report.incidents)

    def test_strict_lexer_still_raises(self):
        from repro.php.errors import PhpLexError

        with pytest.raises(PhpLexError):
            Lexer("<?php $s = 'oops", "f.php").tokenize()

    def test_recovered_tokens_close_the_string(self):
        lexer = Lexer("<?php $s = 'oops", "f.php", recover=True)
        tokens = lexer.tokenize()
        values = [t.value for t in tokens]
        assert any("oops" in v for v in values)
        assert len(lexer.incidents) == 1


class TestEngineIsolation:
    def heavy_plugin(self):
        heavy_body = "\n".join("$a = 1;" for _ in range(800))
        return Plugin(
            name="p",
            files={
                "heavy.php": f"<?php\nfunction heavy() {{\n{heavy_body}\n}}\n",
                "vuln.php": "<?php function cb() { echo $_GET['q']; }\n",
            },
        )

    def test_unit_budget_isolates_heavy_function(self):
        """One budget-exhausting function must not stop the others."""
        options = PhpSafeOptions(engine=EngineOptions(unit_step_budget=300))
        report = PhpSafe(options=options).analyze(self.heavy_plugin())
        assert any(f.file == "vuln.php" for f in report.findings)
        faults = [i for i in report.incidents if "step budget" in i.reason]
        assert faults and all(i.recovered for i in faults)
        assert any(i.unit == "function heavy" for i in faults)
        # per-unit exhaustion is not a plugin-wide abort
        assert not any(
            i.severity is IncidentSeverity.FATAL for i in report.incidents
        )

    def test_file_deadline(self):
        source = "<?php\n" + "\n".join("$a = 1;" for _ in range(800))
        report = analyze(source, file_deadline=1e-9)
        assert any("deadline" in i.reason for i in report.incidents)
        assert all(i.recovered for i in report.incidents)

    def test_eval_depth_guard(self):
        # a left-deep 100-term concat tree forces ~100 nested _eval calls
        nested = "$x = " + " . ".join(["'a'"] * 100) + ";"
        plugin = Plugin(
            name="p",
            files={
                "deep.php": f"<?php\n{nested}\n",
                "vuln.php": "<?php echo $_GET['q'];\n",
            },
        )
        options = PhpSafeOptions(engine=EngineOptions(max_eval_depth=20))
        report = PhpSafe(options=options).analyze(plugin)
        # the deep unit degrades to a recovered incident; the other
        # file's finding survives
        assert any(f.file == "vuln.php" for f in report.findings)
        assert any(
            "depth limit" in i.reason and i.recovered for i in report.incidents
        )

    def test_global_budget_still_fatal(self):
        options = PhpSafeOptions(engine=EngineOptions(step_budget=50))
        report = PhpSafe(options=options).analyze(self.heavy_plugin())
        assert any(
            i.severity is IncidentSeverity.FATAL for i in report.incidents
        )
        assert any(f.file == "<plugin>" for f in report.failures)


class TestBudgetFailures:
    def test_budget_exhaustion_is_first_class(self):
        big = "<?php\n" + "$pad = 'x';\n" * 4000
        plugin = Plugin(
            name="p",
            files={
                "big.php": big,
                "vuln.php": "<?php echo $_GET['q'];\n",
            },
        )
        options = PhpSafeOptions(include_budget=1000)
        report = PhpSafe(options=options).analyze(plugin)
        assert any(f.file == "vuln.php" for f in report.findings)
        assert report.files_skipped == 1
        assert report.loc_skipped > 0
        assert 0 < report.coverage < 1
        assert any(
            i.stage is IncidentStage.MODEL and not i.recovered
            for i in report.incidents
        )
        model = PluginModel.build(plugin, include_budget=1000)
        assert "big.php" in model.budget_failures
        assert not model.parse_failures


class TestIncidentTaxonomy:
    def test_describe_and_to_dict(self):
        incident = Incident(
            stage=IncidentStage.PARSE,
            severity=IncidentSeverity.WARNING,
            file="a.php",
            reason="unexpected token",
            recovered=True,
            unit="<main>",
            line=3,
            end_line=5,
        )
        text = incident.describe()
        assert "parse/warning" in text
        assert "(recovered)" in text
        assert "a.php" in text and "unexpected token" in text
        data = incident.to_dict()
        assert data["stage"] == "parse"
        assert data["severity"] == "warning"
        assert data["recovered"] is True

    def test_report_json_includes_incidents(self):
        import json

        from repro.core.review import to_json

        report = analyze(BROKEN_MIDDLE)
        document = json.loads(to_json(report))
        assert document["incidents"]
        assert document["incidents"][0]["stage"] == "parse"
        assert document["files_skipped"] == 0
        assert document["coverage"] == 1.0

    def test_merged_reports_concatenate_incidents(self):
        first = analyze(BROKEN_MIDDLE)
        second = analyze(BROKEN_MIDDLE, recover=False)
        merged = first.merged(second)
        assert len(merged.incidents) == len(first.incidents) + len(
            second.incidents
        )
        assert merged.files_skipped == 1
        assert merged.loc_skipped == second.loc_skipped


class TestBatchTelemetry:
    def test_incidents_reach_telemetry(self, tmp_path):
        plugins = [
            Plugin(name="broken", files={"index.php": BROKEN_MIDDLE}),
            Plugin(name="clean", files={"index.php": "<?php $x = 1;"}),
        ]
        spec = ToolSpec.from_tool(PhpSafe())
        scanner = BatchScanner(spec, BatchOptions(jobs=1))
        result = scanner.scan(plugins)
        telemetry = result.telemetry
        stats = {s.plugin: s for s in telemetry.plugins}
        assert stats["broken"].incidents >= 1
        assert stats["broken"].recovered >= 1
        assert stats["clean"].incidents == 0
        document = telemetry.to_dict()
        assert document["schema"] == "repro.batch.telemetry/v7"
        assert document["incidents"]["total"] >= 1
        assert document["incidents"]["recovered"] >= 1
        assert "files_skipped" in document
        assert "corrupt" in document["cache"]
        row = stats["broken"].to_dict()
        assert row["incidents"] >= 1 and row["recovered"] >= 1
        assert "corrupt" in row["cache"]


class TestCorruptCache:
    def corrupt_all_objects(self, cache_dir):
        count = 0
        for dirpath, _dirnames, filenames in os.walk(cache_dir):
            for name in filenames:
                if name.endswith(".pkl"):
                    with open(os.path.join(dirpath, name), "wb") as handle:
                        handle.write(b"\x80garbage not a pickle")
                    count += 1
        return count

    def test_corrupt_slot_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plugin = Plugin(name="p", files={"index.php": "<?php echo $_GET['q'];"})

        warm = DiskModelCache(cache_dir)
        baseline = PhpSafe(cache=warm).analyze(plugin)
        assert warm.disk_len() >= 1
        assert self.corrupt_all_objects(cache_dir) >= 1

        cold = DiskModelCache(cache_dir)  # fresh memory tier, rotten disk
        report = PhpSafe(cache=cold).analyze(plugin)
        assert cold.stats.corrupt >= 1
        assert cold.stats.disk_hits == 0
        # analysis falls back to a clean re-parse, results identical
        assert [f.key for f in report.findings] == [
            f.key for f in baseline.findings
        ]
        # the quarantined object was replaced by a clean rewrite
        assert DiskModelCache(cache_dir).disk_len() >= 1

    def test_corrupt_counter_in_stats(self, tmp_path):
        cache = DiskModelCache(str(tmp_path / "c"))
        assert cache.stats.corrupt == 0


class TestStrictEquivalence:
    def test_clean_source_identical_in_both_modes(self):
        source = """<?php
$m = $_GET['m'];
echo '<p>' . $m . '</p>';
$wpdb->query("D WHERE id = " . $_GET['id']);
function hook_cb() { echo $_POST['x']; }
"""
        recovered = analyze(source)
        strict = analyze(source, recover=False)
        assert [f.key for f in recovered.findings] == [
            f.key for f in strict.findings
        ]
        assert recovered.incidents == [] and strict.incidents == []
        assert recovered.failures == strict.failures

"""Engine behaviour: sources, sinks, sanitizers, reverts (Section III.C)."""

from repro.config.vulnerability import InputVector, VulnKind
from repro.core import PhpSafe

from tests.helpers import findings_of


def xss(source):
    return [f for f in findings_of(source) if f.kind is VulnKind.XSS]


def sqli(source):
    return [f for f in findings_of(source) if f.kind is VulnKind.SQLI]


class TestSources:
    def test_get_to_echo(self):
        found = xss("<?php echo $_GET['q'];")
        assert len(found) == 1
        assert found[0].vectors == (InputVector.GET,)

    def test_post_cookie_request(self):
        for superglobal, vector in (
            ("$_POST", InputVector.POST),
            ("$_COOKIE", InputVector.COOKIE),
            ("$_REQUEST", InputVector.REQUEST),
        ):
            found = xss(f"<?php echo {superglobal}['k'];")
            assert found and found[0].vectors == (vector,)

    def test_server_is_source(self):
        assert xss("<?php echo $_SERVER['HTTP_USER_AGENT'];")

    def test_file_function_source(self):
        found = xss("<?php $l = fgets($fp, 128); echo $l;")
        assert found and found[0].vectors == (InputVector.FILE,)

    def test_db_function_source(self):
        found = xss("<?php $r = mysql_fetch_assoc($res); echo $r['x'];")
        assert found and found[0].vectors == (InputVector.DB,)

    def test_get_option_is_wordpress_db_source(self):
        found = xss("<?php $v = get_option('k'); echo $v;")
        assert found and found[0].vectors == (InputVector.DB,)

    def test_literal_is_clean(self):
        assert not findings_of("<?php echo 'hello';")

    def test_unknown_variable_clean(self):
        assert not findings_of("<?php echo $mystery;")


class TestSinks:
    def test_print_and_exit_sinks(self):
        assert xss("<?php print $_GET['a'];")
        assert xss("<?php die($_GET['a']);")

    def test_printf_sink(self):
        assert xss("<?php printf($_GET['fmt']);")

    def test_short_echo_tag_sink(self):
        assert xss("<?= $_GET['x'] ?>")

    def test_mysql_query_sqli_sink(self):
        found = sqli("<?php mysql_query('SELECT 1 WHERE x=' . $_GET['id']);")
        assert len(found) == 1
        assert found[0].sink == "mysql_query"

    def test_mysqli_query_arg_position(self):
        # only argument 1 of mysqli_query is the SQL string
        assert sqli("<?php mysqli_query($link, 'X' . $_GET['id']);")
        assert not sqli("<?php mysqli_query($_GET['id'], 'SELECT 1');")

    def test_xss_taint_does_not_fire_sqli_sink_alone(self):
        # htmlentities clears XSS but not SQLi; echo stays clean
        assert not xss("<?php echo htmlentities($_GET['x']);")

    def test_finding_line_is_sink_line(self):
        found = xss("<?php\n$x = $_GET['a'];\n\necho $x;\n")
        assert found[0].line == 4


class TestSanitizers:
    def test_htmlentities_blocks_xss(self):
        assert not xss("<?php echo htmlentities($_GET['x']);")

    def test_intval_blocks_everything(self):
        source = "<?php $n = intval($_GET['n']); echo $n; mysql_query('Q' . $n);"
        assert not findings_of(source)

    def test_cast_blocks_everything(self):
        assert not findings_of("<?php $n = (int)$_GET['n']; echo $n;")

    def test_sql_escape_blocks_sqli_not_xss(self):
        source = "<?php $e = mysql_real_escape_string($_GET['x']);"
        assert not sqli(source + " mysql_query('Q' . $e);")
        assert xss(source + " echo $e;")  # the paper's blended attack

    def test_wordpress_esc_html(self):
        assert not xss("<?php echo esc_html($_GET['x']);")

    def test_wordpress_sanitize_text_field(self):
        assert not findings_of("<?php echo sanitize_text_field($_POST['x']);")

    def test_wpdb_prepare_blocks_sqli(self):
        source = (
            "<?php $q = $wpdb->prepare('SELECT %s', $_GET['x']);"
            "$wpdb->query($q);"
        )
        assert not sqli(source)

    def test_sanitized_variable_stays_clean_across_uses(self):
        source = "<?php $s = htmlentities($_GET['a']); echo $s; echo $s;"
        assert not xss(source)


class TestReverts:
    def test_stripslashes_reverts_sanitization(self):
        source = (
            "<?php $s = htmlentities($_GET['x']);"
            "$r = stripslashes($s); echo $r;"
        )
        assert xss(source)

    def test_urldecode_reverts(self):
        source = (
            "<?php $s = htmlentities($_GET['x']);"
            "echo urldecode($s);"
        )
        assert xss(source)

    def test_revert_on_clean_value_is_clean(self):
        assert not xss("<?php echo stripslashes('static');")

    def test_revert_on_tainted_keeps_taint(self):
        assert xss("<?php echo stripslashes($_GET['x']);")


class TestPropagation:
    def test_assignment_chain(self):
        assert xss("<?php $a = $_GET['x']; $b = $a; $c = $b; echo $c;")

    def test_concat_propagates(self):
        assert xss("<?php $m = 'Hello ' . $_GET['name']; echo $m;")

    def test_concat_equal_propagates(self):
        assert xss("<?php $m = 'Hi'; $m .= $_GET['x']; echo $m;")

    def test_interpolation_propagates(self):
        assert xss('<?php $x = $_GET[\'v\']; echo "value: $x";')

    def test_arithmetic_clears_taint(self):
        assert not findings_of("<?php $n = $_GET['a'] + 1; echo $n;")

    def test_comparison_clears_taint(self):
        assert not findings_of("<?php $b = $_GET['a'] == 'x'; echo $b;")

    def test_passthrough_builtin(self):
        assert xss("<?php echo trim($_GET['x']);")
        assert xss("<?php echo sprintf('%s', strtolower($_GET['x']));")

    def test_clean_builtin(self):
        assert not findings_of("<?php echo strpos($_GET['x'], 'a');")

    def test_array_element_write_taints_container(self):
        assert xss("<?php $a = array(); $a['k'] = $_GET['x']; echo $a['k'];")

    def test_array_literal_propagates(self):
        assert xss("<?php $a = array($_GET['x']); echo $a[0];")

    def test_unset_clears(self):
        # T_UNSET: variable becomes untainted (Section III.C)
        assert not findings_of("<?php $x = $_GET['a']; unset($x); echo $x;")

    def test_reassignment_clears(self):
        assert not findings_of("<?php $x = $_GET['a']; $x = 'safe'; echo $x;")

    def test_multiple_findings_deduplicated_per_sink_line(self):
        report = PhpSafe().analyze_source(
            "<?php function f($v) { echo $v; } f($_GET['a']); f($_GET['b']);"
        )
        assert len(report.findings) == 1  # one sink line, one finding

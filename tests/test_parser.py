"""Unit tests for the PHP parser."""

import pytest

from repro.php import PhpParseError, parse_source
from repro.php import ast_nodes as ast


def parse(source):
    return parse_source("<?php\n" + source).statements


def parse_expr(source):
    statements = parse(source + ";")
    assert isinstance(statements[0], ast.ExpressionStatement)
    return statements[0].expr


class TestStatements:
    def test_echo_multiple(self):
        (stmt,) = parse("echo $a, $b;")
        assert isinstance(stmt, ast.EchoStatement)
        assert len(stmt.exprs) == 2

    def test_short_echo_tag(self):
        tree = parse_source("<?= $x ?>")
        assert isinstance(tree.statements[0], ast.EchoStatement)

    def test_inline_html(self):
        tree = parse_source("<div>x</div>")
        assert isinstance(tree.statements[0], ast.InlineHTML)
        assert tree.statements[0].text == "<div>x</div>"

    def test_if_elseif_else(self):
        (stmt,) = parse("if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }")
        assert isinstance(stmt, ast.IfStatement)
        assert len(stmt.elseifs) == 1
        assert stmt.otherwise is not None

    def test_else_if_two_words(self):
        (stmt,) = parse("if ($a) {} else if ($b) {}")
        assert len(stmt.elseifs) == 1

    def test_alternative_if_syntax(self):
        (stmt,) = parse("if ($a):\n $x = 1;\nelse:\n $x = 2;\nendif;")
        assert isinstance(stmt, ast.IfStatement)
        assert stmt.otherwise is not None

    def test_while_and_do_while(self):
        stmts = parse("while ($a) { $a--; } do { $b++; } while ($b < 3);")
        assert isinstance(stmts[0], ast.WhileStatement)
        assert isinstance(stmts[1], ast.DoWhileStatement)

    def test_alternative_while(self):
        (stmt,) = parse("while ($a):\n $a--;\nendwhile;")
        assert isinstance(stmt, ast.WhileStatement)
        assert len(stmt.body) == 1

    def test_for(self):
        (stmt,) = parse("for ($i = 0; $i < 3; $i++) { echo $i; }")
        assert isinstance(stmt, ast.ForStatement)
        assert len(stmt.init) == len(stmt.cond) == len(stmt.update) == 1

    def test_foreach_value(self):
        (stmt,) = parse("foreach ($rows as $row) { echo $row; }")
        assert isinstance(stmt, ast.ForeachStatement)
        assert stmt.key_var is None
        assert isinstance(stmt.value_var, ast.Variable)

    def test_foreach_key_value_by_ref(self):
        (stmt,) = parse("foreach ($rows as $k => &$v) { $v = 1; }")
        assert stmt.key_var.name == "k"
        assert stmt.by_ref

    def test_switch(self):
        (stmt,) = parse(
            "switch ($a) { case 1: echo 'a'; break; default: echo 'b'; }"
        )
        assert isinstance(stmt, ast.SwitchStatement)
        assert len(stmt.cases) == 2
        assert stmt.cases[1].test is None

    def test_alternative_switch(self):
        (stmt,) = parse("switch ($a):\ncase 1:\n echo 'x';\nendswitch;")
        assert len(stmt.cases) == 1

    def test_return_with_and_without_value(self):
        stmts = parse("function f() { return; } function g() { return 1; }")
        assert stmts[0].body[0].expr is None
        assert isinstance(stmts[1].body[0].expr, ast.Literal)

    def test_global(self):
        (stmt,) = parse("global $wpdb, $post;")
        assert stmt.names == ["wpdb", "post"]

    def test_static_vars(self):
        (stmt,) = parse("static $count = 0, $other;")
        assert isinstance(stmt, ast.StaticVarStatement)
        assert stmt.vars[0][0] == "count"
        assert stmt.vars[1][1] is None

    def test_unset(self):
        (stmt,) = parse("unset($a, $b[1]);")
        assert isinstance(stmt, ast.UnsetStatement)
        assert len(stmt.vars) == 2

    def test_try_catch_finally(self):
        (stmt,) = parse(
            "try { f(); } catch (Exception $e) { g(); } finally { h(); }"
        )
        assert isinstance(stmt, ast.TryStatement)
        assert stmt.catches[0].class_name == "Exception"
        assert stmt.catches[0].var_name == "e"
        assert stmt.finally_body is not None

    def test_throw(self):
        (stmt,) = parse("throw new Exception('x');")
        assert isinstance(stmt, ast.ThrowStatement)

    def test_break_continue_levels(self):
        stmts = parse("while (1) { break 2; continue; }")
        body = stmts[0].body
        assert body[0].level == 2
        assert body[1].level == 1

    def test_namespace_and_use(self):
        stmts = parse("namespace My\\Plugin;\nuse Other\\Thing as T;")
        assert isinstance(stmts[0], ast.NamespaceStatement)
        assert stmts[0].name == "My\\Plugin"
        assert stmts[1].alias == "T"

    def test_const_statement(self):
        (stmt,) = parse("const VERSION = '1.0', BUILD = 2;")
        assert len(stmt.consts) == 2

    def test_close_tag_terminates_statement(self):
        tree = parse_source("<?php $a = 1 ?>")
        assert isinstance(tree.statements[0], ast.ExpressionStatement)

    def test_missing_semicolon_raises(self):
        with pytest.raises(PhpParseError):
            parse("$a = 1 $b = 2;")


class TestFunctionsAndClasses:
    def test_function_declaration(self):
        (decl,) = parse("function handle($a, &$b, $c = 5) { return $a; }")
        assert isinstance(decl, ast.FunctionDecl)
        assert [p.name for p in decl.params] == ["a", "b", "c"]
        assert decl.params[1].by_ref
        assert isinstance(decl.params[2].default, ast.Literal)

    def test_function_by_ref_return(self):
        (decl,) = parse("function &get_ref() { return $x; }")
        assert decl.by_ref

    def test_type_hints(self):
        (decl,) = parse("function f(array $a, Widget $w) {}")
        assert decl.params[0].type_hint == "array"
        assert decl.params[1].type_hint == "Widget"

    def test_class_with_members(self):
        (decl,) = parse(
            """class Widget extends Base implements Renderable {
                const LIMIT = 10;
                public $name = 'x';
                private static $cache;
                public function render() { echo $this->name; }
                protected static function boot() {}
                var $legacy;
            }"""
        )
        assert isinstance(decl, ast.ClassDecl)
        assert decl.parent == "Base"
        assert decl.interfaces == ["Renderable"]
        assert decl.constants[0].name == "LIMIT"
        assert [p.name for p in decl.properties] == ["name", "cache", "legacy"]
        assert decl.properties[1].static and decl.properties[1].visibility == "private"
        assert decl.properties[2].visibility == "public"  # var == public
        assert [m.name for m in decl.methods] == ["render", "boot"]
        assert decl.methods[1].static

    def test_abstract_class_and_method(self):
        (decl,) = parse("abstract class A { abstract public function f(); }")
        assert decl.is_abstract
        assert decl.methods[0].abstract
        assert decl.methods[0].body is None

    def test_interface(self):
        (decl,) = parse("interface I { public function f(); }")
        assert decl.kind == "interface"

    def test_trait_and_use(self):
        stmts = parse("trait T { public function t() {} } class C { use T; }")
        assert stmts[0].kind == "trait"
        assert stmts[1].uses == ["T"]

    def test_method_call_with_keyword_name(self):
        # `list` is a keyword; PHP allows it after `->`
        expr = parse_expr("$obj->list()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "list"


class TestExpressions:
    def test_assignment_chain_right_assoc(self):
        expr = parse_expr("$a = $b = 1")
        assert isinstance(expr, ast.Assignment)
        assert isinstance(expr.value, ast.Assignment)

    def test_compound_assignment(self):
        expr = parse_expr("$a .= $b")
        assert expr.op == ".="

    def test_assign_by_reference(self):
        expr = parse_expr("$a =& $b")
        assert expr.by_ref

    def test_concat_precedence(self):
        expr = parse_expr("'a' . $b . 'c'")
        assert isinstance(expr, ast.Binary) and expr.op == "."
        assert isinstance(expr.left, ast.Binary)  # left-assoc

    def test_arithmetic_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_logical_operators(self):
        expr = parse_expr("$a && $b || $c")
        assert expr.op == "||"

    def test_low_precedence_and(self):
        expr = parse_expr("$a = $b and $c")
        # `and` binds looser than `=`
        assert isinstance(expr, ast.Binary) and expr.op == "and"
        assert isinstance(expr.left, ast.Assignment)

    def test_ternary(self):
        expr = parse_expr("$a ? 'y' : 'n'")
        assert isinstance(expr, ast.Ternary)

    def test_short_ternary(self):
        expr = parse_expr("$a ?: 'n'")
        assert expr.if_true is None

    def test_function_call(self):
        expr = parse_expr("htmlentities($x, 2)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "htmlentities"
        assert len(expr.args) == 2

    def test_dynamic_call(self):
        expr = parse_expr("$fn($x)")
        assert isinstance(expr, ast.FunctionCall)
        assert isinstance(expr.name, ast.Variable)

    def test_method_call(self):
        expr = parse_expr("$wpdb->get_results($sql)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "get_results"

    def test_chained_method_calls(self):
        expr = parse_expr("$a->b()->c()")
        assert isinstance(expr, ast.MethodCall)
        assert isinstance(expr.object, ast.MethodCall)

    def test_property_access(self):
        expr = parse_expr("$row->sml_name")
        assert isinstance(expr, ast.PropertyAccess)
        assert expr.name == "sml_name"

    def test_static_call_and_property(self):
        call = parse_expr("Widget::make($x)")
        assert isinstance(call, ast.StaticCall)
        prop = parse_expr("Widget::$shared")
        assert isinstance(prop, ast.StaticPropertyAccess)

    def test_class_constant(self):
        expr = parse_expr("Widget::LIMIT")
        assert isinstance(expr, ast.ClassConstAccess)

    def test_new_with_args(self):
        expr = parse_expr("new Widget($a)")
        assert isinstance(expr, ast.New)
        assert expr.class_name == "Widget"

    def test_new_then_method(self):
        expr = parse_expr("new Widget()")
        assert isinstance(expr, ast.New)

    def test_array_literal_long_and_short(self):
        long = parse_expr("array(1, 'k' => 2)")
        short = parse_expr("[1, 'k' => 2]")
        for expr in (long, short):
            assert isinstance(expr, ast.ArrayLiteral)
            assert expr.items[1].key is not None

    def test_array_access_nested(self):
        expr = parse_expr("$a['x'][0]")
        assert isinstance(expr, ast.ArrayAccess)
        assert isinstance(expr.array, ast.ArrayAccess)

    def test_array_append_target(self):
        expr = parse_expr("$a[] = 1")
        assert isinstance(expr.target, ast.ArrayAccess)
        assert expr.target.index is None

    def test_superglobal_access(self):
        expr = parse_expr("$_GET['id']")
        assert expr.array.name == "_GET"

    def test_isset_empty_list(self):
        assert isinstance(parse_expr("isset($a, $b)"), ast.IssetExpr)
        assert isinstance(parse_expr("empty($a)"), ast.EmptyExpr)
        expr = parse_expr("list($a, , $b) = $arr")
        assert isinstance(expr.target, ast.ListExpr)
        assert expr.target.targets[1] is None

    def test_casts(self):
        expr = parse_expr("(int)$_GET['n']")
        assert isinstance(expr, ast.Cast) and expr.to == "int"

    def test_error_suppression(self):
        expr = parse_expr("@file('x')")
        assert isinstance(expr, ast.Unary) and expr.op == "@"

    def test_inc_dec(self):
        pre = parse_expr("++$i")
        post = parse_expr("$i++")
        assert pre.prefix and not post.prefix

    def test_include_require(self):
        expr = parse_expr("require_once dirname(__FILE__) . '/inc.php'")
        assert isinstance(expr, ast.IncludeExpr)
        assert expr.kind == "require_once"

    def test_print_and_exit(self):
        assert isinstance(parse_expr("print $x"), ast.PrintExpr)
        assert isinstance(parse_expr("exit('bye')"), ast.ExitExpr)
        assert isinstance(parse_expr("die()"), ast.ExitExpr)

    def test_closure_with_use(self):
        expr = parse_expr("function ($a) use (&$b) { return $a; }")
        assert isinstance(expr, ast.Closure)
        assert expr.uses[0].by_ref

    def test_instanceof(self):
        expr = parse_expr("$a instanceof Widget")
        assert isinstance(expr, ast.InstanceofExpr)

    def test_clone(self):
        assert isinstance(parse_expr("clone $obj"), ast.Clone)

    def test_interpolated_string_parts(self):
        expr = parse_expr('"Hello $name, {$obj->title}!"')
        assert isinstance(expr, ast.InterpolatedString)
        kinds = [type(p).__name__ for p in expr.parts]
        assert "Variable" in kinds and "PropertyAccess" in kinds

    def test_heredoc_expression(self):
        tree = parse_source('<?php $sql = <<<EOT\nSELECT $x\nEOT;\n')
        assign = tree.statements[0].expr
        assert isinstance(assign.value, ast.InterpolatedString)

    def test_string_literal_unescaping(self):
        expr = parse_expr("'it\\'s'")
        assert expr.value == "it's"
        expr = parse_expr('"tab\\there"')
        assert expr.value == "tab\there"

    def test_line_numbers_on_nodes(self):
        tree = parse_source("<?php\n\n$a = 1;\necho $a;\n")
        assert tree.statements[0].line == 3
        assert tree.statements[1].line == 4


class TestParserErrors:
    def test_unclosed_brace(self):
        with pytest.raises(PhpParseError):
            parse("function f() { $a = 1;")

    def test_unexpected_token(self):
        with pytest.raises(PhpParseError):
            parse("$a = ;")

    def test_error_carries_location(self):
        try:
            parse_source("<?php\n$a = ;", filename="bad.php")
        except PhpParseError as error:
            assert error.filename == "bad.php"
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected PhpParseError")

"""Tests for the shared BENCH_*.json bookkeeping (repro.benchgate)."""

import json

from repro.benchgate import merge_bench


class TestMergeBench:
    def test_baseline_preserved_and_speedup_derived(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_bench(path, {"analyzer_seconds": 0.2}, record_baseline=True)
        data = merge_bench(path, {"analyzer_seconds": 0.1})
        assert data["baseline"]["analyzer_seconds"] == 0.2
        assert data["speedup_vs_baseline"]["analyzer"] == 2.0

    def test_normalized_speedup_cancels_machine_speed(self, tmp_path):
        """A baseline recorded on a faster box (higher calibration ops/s)
        must not inflate the speedup: seconds are converted to
        calibration-ops-equivalent work on each side first."""
        path = str(tmp_path / "BENCH_x.json")
        merge_bench(
            path,
            {"analyzer_seconds": 0.2, "lexer_seconds": 0.04},
            record_baseline=True,
            calibration_ops=20_000_000.0,
        )
        data = merge_bench(
            path,
            {"analyzer_seconds": 0.1, "lexer_seconds": 0.04},
            calibration_ops=10_000_000.0,
        )
        # raw: 2x; normalized: the current box is half as fast, so the
        # same wall time means 4x less work per stage
        assert data["speedup_vs_baseline"]["analyzer"] == 2.0
        assert data["speedup_vs_baseline_normalized"]["analyzer"] == 4.0
        # every *_seconds stage gets the normalized line, not just one
        assert data["speedup_vs_baseline_normalized"]["lexer"] == 2.0

    def test_normalized_empty_without_calibration(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_bench(path, {"analyzer_seconds": 0.2}, record_baseline=True)
        data = merge_bench(path, {"analyzer_seconds": 0.1})
        assert data["speedup_vs_baseline_normalized"] == {}

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_bench(
            path,
            {"analyzer_seconds": 0.2},
            record_baseline=True,
            calibration_ops=1_000_000.0,
        )
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["schema"] == "repro.bench/v1"
        assert data["current"]["calibration_ops_per_second"] == 1_000_000.0

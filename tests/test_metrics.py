"""Unit and property tests for the classification metrics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import Confusion, percent


class TestConfusion:
    def test_paper_cell_phpsafe_2012_xss(self):
        # Table I: TP=307, FP=63 -> Precision 83%
        confusion = Confusion(tp=307, fp=63, fn=72)
        assert percent(confusion.precision) == "83%"
        assert percent(confusion.recall) == "81%"

    def test_precision_none_when_nothing_reported(self):
        confusion = Confusion(tp=0, fp=0, fn=5)
        assert confusion.precision is None
        assert percent(confusion.precision) == "-"

    def test_recall_none_when_no_positives_exist(self):
        assert Confusion(tp=0, fp=3, fn=0).recall is None

    def test_fscore_none_when_undefined(self):
        assert Confusion(tp=0, fp=0, fn=0).f_score is None
        assert Confusion(tp=0, fp=1, fn=1).f_score is None  # P=R=0

    def test_perfect_tool(self):
        confusion = Confusion(tp=10, fp=0, fn=0)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0
        assert confusion.f_score == 1.0

    def test_addition(self):
        total = Confusion(1, 2, 3) + Confusion(4, 5, 6)
        assert (total.tp, total.fp, total.fn) == (5, 7, 9)


counts = st.integers(min_value=0, max_value=1000)


@given(counts, counts, counts)
def test_rates_bounded(tp, fp, fn):
    confusion = Confusion(tp=tp, fp=fp, fn=fn)
    for rate in (confusion.precision, confusion.recall, confusion.f_score):
        assert rate is None or 0.0 <= rate <= 1.0


@given(counts, counts, counts)
def test_fscore_between_precision_and_recall(tp, fp, fn):
    """The harmonic mean lies between its operands."""
    confusion = Confusion(tp=tp, fp=fp, fn=fn)
    precision = confusion.precision
    recall = confusion.recall
    f_score = confusion.f_score
    if f_score is None or precision is None or recall is None:
        return
    low, high = min(precision, recall), max(precision, recall)
    assert low - 1e-9 <= f_score <= high + 1e-9


@given(counts, st.integers(min_value=1, max_value=1000))
def test_more_fp_never_raises_precision(tp, fp):
    worse = Confusion(tp=tp, fp=fp, fn=0)
    better = Confusion(tp=tp, fp=fp - 1, fn=0)
    if better.precision is not None and worse.precision is not None:
        assert worse.precision <= better.precision


@given(counts)
def test_percent_formatting(value):
    confusion = Confusion(tp=value, fp=0, fn=0)
    if value:
        assert percent(confusion.precision) == "100%"

"""Tests for the shipped Drupal and Joomla profiles (Section VI)."""

from repro.config import drupal, joomla, wordpress
from repro.config.vulnerability import VulnKind
from repro.core import PhpSafe

from tests.helpers import findings_of


def kinds(source, profile):
    return sorted(
        f.kind.value for f in findings_of(source, PhpSafe(profile=profile))
    )


class TestDrupalProfile:
    def test_db_query_is_source_and_sink(self):
        source = (
            "<?php $r = db_fetch_object(db_query('SELECT title FROM {node}'));"
            "echo $r->title;"
        )
        assert kinds(source, drupal()) == ["xss"]

    def test_check_plain_sanitizes(self):
        source = "<?php echo check_plain($_GET['q']);"
        assert kinds(source, drupal()) == []

    def test_filter_xss_sanitizes(self):
        assert kinds("<?php echo filter_xss($_GET['q']);", drupal()) == []

    def test_sqli_through_db_query(self):
        source = "<?php db_query(\"SELECT 1 WHERE t = '\" . $_GET['t'] . \"'\");"
        assert kinds(source, drupal()) == ["sqli"]

    def test_db_escape_string_blocks_sqli_only(self):
        source = (
            "<?php $e = db_escape_string($_GET['t']);"
            "db_query('S WHERE t = ' . $e); echo $e;"
        )
        assert kinds(source, drupal()) == ["xss"]  # blended attack survives

    def test_variable_get_is_db_source(self):
        assert kinds("<?php echo variable_get('greeting');", drupal()) == ["xss"]

    def test_drupal_set_message_sink(self):
        assert kinds(
            "<?php drupal_set_message('x: ' . $_GET['m']);", drupal()
        ) == ["xss"]

    def test_wordpress_profile_blind_to_drupal(self):
        source = "<?php echo db_fetch_object(db_query('S'))->title;"
        assert kinds(source, wordpress()) == []


class TestJoomlaProfile:
    def test_jrequest_static_source(self):
        source = "<?php echo JRequest::getVar('title');"
        assert kinds(source, joomla()) == ["xss"]

    def test_jrequest_getint_is_clean(self):
        assert kinds("<?php echo JRequest::getInt('n');", joomla()) == []

    def test_jdatabase_conventional_name(self):
        # $db = JFactory::getDBO() is opaque, but the conventional name
        # carries the JDatabase type (known-instance registry)
        source = (
            "<?php $db = JFactory::getDBO();"
            "$db->setQuery('S WHERE t = ' . JRequest::getVar('t'));"
        )
        assert kinds(source, joomla()) == ["sqli"]

    def test_jdatabase_quote_blocks_sqli(self):
        source = (
            "<?php $db = JFactory::getDBO();"
            "$db->setQuery('S WHERE t = ' . $db->quote(JRequest::getVar('t')));"
        )
        assert kinds(source, joomla()) == []

    def test_load_object_list_rows_tainted(self):
        source = (
            "<?php $db = JFactory::getDBO();"
            "$rows = $db->loadObjectList();"
            "foreach ($rows as $row) { echo $row->text; }"
        )
        found = findings_of(source, PhpSafe(profile=joomla()))
        assert found and found[0].kind is VulnKind.XSS
        assert found[0].via_oop

    def test_jinput_object(self):
        source = "<?php echo $input->getString('q');"
        assert kinds(source, joomla()) == ["xss"]

    def test_wordpress_profile_blind_to_joomla(self):
        assert kinds("<?php echo JRequest::getVar('t');", wordpress()) == []

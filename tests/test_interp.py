"""Tests for the PHP interpreter subset."""

import pytest

from repro.php.interp import (
    Interpreter,
    MagicTaintArray,
    PhpArray,
    PhpRuntimeError,
    to_number,
    to_php_string,
    truthy,
)


def run(source, superglobals=None):
    interp = Interpreter(superglobals=superglobals or {})
    interp.load_source("<?php\n" + source)
    interp.run_file("input.php")
    return interp


def page(source, superglobals=None):
    return run(source, superglobals).effects.page


class TestValues:
    def test_php_string_coercions(self):
        assert to_php_string(None) == ""
        assert to_php_string(True) == "1"
        assert to_php_string(False) == ""
        assert to_php_string(3.0) == "3"
        assert to_php_string(3.5) == "3.5"
        assert to_php_string(PhpArray()) == "Array"

    def test_truthiness(self):
        assert not truthy("")
        assert not truthy("0")
        assert truthy("0.0")  # PHP quirk: only "" and "0" are falsy
        assert not truthy(PhpArray())
        assert truthy(PhpArray({0: 1}))

    def test_numeric_coercion(self):
        assert to_number("42abc") == 42
        assert to_number("3.5x") == 3.5
        assert to_number("abc") == 0
        assert to_number(True) == 1

    def test_array_key_normalization(self):
        array = PhpArray()
        array.set("3", "x")
        assert array.get(3) == "x"
        array.append("y")
        assert array.get(4) == "y"


class TestExecution:
    def test_echo_and_arithmetic(self):
        assert page("echo 1 + 2 * 3;") == "7"

    def test_string_concat_and_interpolation(self):
        assert page("$a = 'wo'; echo \"hello {$a}rld\";") == "hello world"

    def test_if_elseif_else(self):
        source = "$x = 2; if ($x == 1) { echo 'a'; } elseif ($x == 2) { echo 'b'; } else { echo 'c'; }"
        assert page(source) == "b"

    def test_while_and_for(self):
        assert page("$i = 0; while ($i < 3) { echo $i; $i++; }") == "012"
        assert page("for ($i = 3; $i > 0; $i--) { echo $i; }") == "321"

    def test_foreach_key_value(self):
        source = "foreach (array('a' => 1, 'b' => 2) as $k => $v) { echo \"$k$v\"; }"
        assert page(source) == "a1b2"

    def test_break_continue(self):
        source = "for ($i = 0; $i < 5; $i++) { if ($i == 1) { continue; } if ($i == 3) { break; } echo $i; }"
        assert page(source) == "02"

    def test_switch_with_fallthrough(self):
        source = "switch (2) { case 1: echo 'a'; case 2: echo 'b'; case 3: echo 'c'; break; default: echo 'd'; }"
        assert page(source) == "bc"

    def test_functions_and_recursion(self):
        source = "function fact($n) { if ($n <= 1) { return 1; } return $n * fact($n - 1); } echo fact(5);"
        assert page(source) == "120"

    def test_default_parameters(self):
        source = "function greet($name = 'world') { return 'hi ' . $name; } echo greet(); echo greet('php');"
        assert page(source) == "hi worldhi php"

    def test_globals(self):
        source = "$count = 5; function show() { global $count; echo $count; $count = 9; } show(); echo $count;"
        assert page(source) == "59"

    def test_ternary_and_isset(self):
        assert page("$a = null; echo isset($a) ? 'y' : 'n';") == "n"
        assert page("$a = 1; echo isset($a) ? 'y' : 'n';") == "y"

    def test_exit_stops_script(self):
        assert page("echo 'a'; die('bye'); echo 'never';") == "abye"

    def test_infinite_loop_budget(self):
        with pytest.raises(PhpRuntimeError):
            run("while (true) { $x = 1; }")

    def test_inline_html(self):
        interp = Interpreter()
        interp.load_source("<b>hi</b><?php echo '!'; ?> there")
        interp.run_file("input.php")
        assert interp.effects.page == "<b>hi</b>! there"


class TestOop:
    def test_object_lifecycle(self):
        source = (
            "class Counter { public $n = 0;"
            " public function __construct($start) { $this->n = $start; }"
            " public function bump() { $this->n++; return $this->n; } }"
            "$c = new Counter(10); $c->bump(); echo $c->bump();"
        )
        assert page(source) == "12"

    def test_inherited_method(self):
        source = (
            "class Base { public function hello() { return 'base'; } }"
            "class Child extends Base {}"
            "$c = new Child(); echo $c->hello();"
        )
        assert page(source) == "base"

    def test_property_defaults_from_parent(self):
        source = (
            "class Base { public $tag = 'b'; }"
            "class Child extends Base { public $extra = 'c'; }"
            "$c = new Child(); echo $c->tag . $c->extra;"
        )
        assert page(source) == "bc"

    def test_static_call_and_self(self):
        source = (
            "class U { public static function twice($x) { return $x * 2; }"
            " public function quad($x) { return self::twice(self::twice($x)); } }"
            "$u = new U(); echo $u->quad(3);"
        )
        assert page(source) == "12"

    def test_php4_constructor(self):
        source = (
            "class Legacy { public $v; public function Legacy($x) { $this->v = $x; } }"
            "$l = new Legacy('ok'); echo $l->v;"
        )
        assert page(source) == "ok"


class TestBuiltins:
    def test_sanitizers_match_php_semantics(self):
        assert page("echo htmlentities('<a>&');") == "&lt;a&gt;&amp;"
        assert page("echo strip_tags('<b>bold</b>!');") == "bold!"
        assert page("echo intval('12abc');") == "12"
        assert page("echo addslashes(\"o'clock\");") == "o\\'clock"
        assert page("echo basename('/etc/../passwd');") == "passwd"
        assert page("echo escapeshellarg('a;b');") == "'a;b'"

    def test_string_functions(self):
        assert page("echo strtoupper('abc') . strrev('xyz');") == "ABCzyx"
        assert page("echo substr('abcdef', 1, 3);") == "bcd"
        assert page("echo str_replace('a', 'o', 'banana');") == "bonono"
        assert page("echo sprintf('%s-%d', 'x', 5);") == "x-5"
        assert page("echo implode(',', array(1, 2, 3));") == "1,2,3"

    def test_array_functions(self):
        assert page("echo count(array(1, 2, 3));") == "3"
        assert page("echo in_array(2, array(1, 2)) ? 'y' : 'n';") == "y"

    def test_unknown_function_is_noop(self):
        assert page("echo 'a'; some_wordpress_hook('x'); echo 'b';") == "ab"

    def test_commands_recorded_not_run(self):
        interp = run("system('rm -rf /tmp/x'); shell_exec('ls');")
        assert interp.effects.commands == ["rm -rf /tmp/x", "ls"]
        assert interp.effects.page == ""


class TestSuperglobals:
    def test_injected_values(self):
        interp = run(
            "echo $_GET['name'];",
            superglobals={"_GET": PhpArray({"name": "alice"})},
        )
        assert interp.effects.page == "alice"

    def test_magic_taint_array_answers_everything(self):
        magic = MagicTaintArray("PAYLOAD")
        assert magic.get("anything") == "PAYLOAD"
        assert magic.has("whatever")
        interp = run("echo $_GET['surprise'];", superglobals={"_GET": magic})
        assert interp.effects.page == "PAYLOAD"

    def test_superglobals_visible_inside_functions(self):
        interp = run(
            "function f() { echo $_POST['k']; } f();",
            superglobals={"_POST": PhpArray({"k": "deep"})},
        )
        assert interp.effects.page == "deep"


class TestEntryPoints:
    def test_call_function_directly(self):
        interp = Interpreter()
        interp.load_source("<?php function add($a, $b) { return $a + $b; }")
        assert interp.call_function("add", [2, 3]) == 5

    def test_instantiate_and_call_method(self):
        interp = Interpreter()
        interp.load_source(
            "<?php class Box { public $v; public function put($x) { $this->v = $x; } }"
        )
        box = interp.instantiate("Box")
        interp.call_method(box, "put", ["gold"])
        assert box.properties["v"] == "gold"

    def test_undefined_function_raises(self):
        interp = Interpreter()
        interp.load_source("<?php $a = 1;")
        with pytest.raises(PhpRuntimeError):
            interp.call_function("nope")

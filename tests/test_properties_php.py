"""Property-based tests on the PHP substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.php import parse_source, print_file, tokenize, tokenize_significant
from repro.php import ast_nodes as ast
from repro.php.parser import unescape_single_quoted
from repro.php.printer import print_expr

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True)
php_strings = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=40,
)


@given(php_strings)
def test_single_quoted_string_roundtrip(value):
    """Escaping then lexing+unescaping a single-quoted literal is identity."""
    escaped = value.replace("\\", "\\\\").replace("'", "\\'")
    raw = f"'{escaped}'"
    assert unescape_single_quoted(raw) == value


@given(php_strings)
def test_literal_value_survives_parse_print_parse(value):
    """A string literal's decoded value survives a full round trip."""
    escaped = value.replace("\\", "\\\\").replace("'", "\\'")
    source = f"<?php $x = '{escaped}';"
    tree = parse_source(source)
    literal = tree.statements[0].expr.value
    assert isinstance(literal, ast.Literal)
    assert literal.value == value
    reparsed = parse_source(print_file(tree))
    assert reparsed.statements[0].expr.value.value == value


@given(st.text(max_size=200))
def test_lexer_never_crashes_on_html(text):
    """Arbitrary text outside <?php is one INLINE_HTML token."""
    if "<?" in text:
        return
    tokens = tokenize(text)
    assert len(tokens) <= 1


@given(identifiers, identifiers)
def test_variable_names_tokenize_exactly(name_a, name_b):
    tokens = tokenize_significant(f"<?php ${name_a} = ${name_b};")
    values = [t.value for t in tokens]
    assert f"${name_a}" in values and f"${name_b}" in values


@given(st.integers(min_value=0, max_value=2**31))
def test_integer_literals_roundtrip(number):
    tree = parse_source(f"<?php $n = {number};")
    assert tree.statements[0].expr.value.value == number


@given(
    st.recursive(
        st.sampled_from(["$a", "$b", "1", "'s'"]),
        lambda inner: st.tuples(
            inner, st.sampled_from([".", "+", "*", "&&"]), inner
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        max_leaves=8,
    )
)
@settings(max_examples=60)
def test_expression_print_parse_fixed_point(expr_text):
    """Printing a parsed expression and reparsing yields identical print."""
    tree = parse_source(f"<?php $x = {expr_text};")
    printed = print_expr(tree.statements[0].expr)
    reparsed = parse_source(f"<?php {printed};")
    assert print_expr(reparsed.statements[0].expr) == printed


@given(st.lists(st.sampled_from(
    ["$a = 1;", "echo $a;", "if ($a) { $b = 2; }", "function f() { return 3; }",
     "while ($a) { $a--; }", "unset($a);", "global $g;"]), min_size=0, max_size=8))
@settings(max_examples=60)
def test_statement_sequences_roundtrip(statements):
    """Any sequence of statement samples parses and round-trips stably."""
    source = "<?php\n" + "\n".join(statements)
    once = print_file(parse_source(source))
    assert print_file(parse_source(once)) == once


@given(st.text(alphabet="abc$ {}()'\"\\<>;=/*#\n", max_size=60))
@settings(max_examples=120)
def test_lexer_total_or_structured_error(source):
    """The lexer either tokenizes or raises a structured PhpSyntaxError."""
    from repro.php import PhpSyntaxError

    try:
        tokens = tokenize("<?php " + source)
    except PhpSyntaxError as error:
        assert error.line >= 1
    else:
        assert all(token.line >= 1 for token in tokens)

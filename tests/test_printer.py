"""Printer round-trip tests: parse → print → parse must be stable."""

import pytest

from repro.php import parse_source, print_expr, print_file

SAMPLES = [
    "<?php\n$a = 1;\n",
    "<?php\necho '<p>' . $_GET['x'] . '</p>';\n",
    "<?php\nif ($a) { echo 1; } elseif ($b) { echo 2; } else { echo 3; }\n",
    "<?php\nwhile ($a) { $a--; }\ndo { $b++; } while ($b < 3);\n",
    "<?php\nfor ($i = 0; $i < 3; $i++) { echo $i; }\n",
    "<?php\nforeach ($rows as $k => $v) { echo $v; }\n",
    "<?php\nswitch ($x) { case 1: echo 'a'; break; default: echo 'b'; }\n",
    "<?php\nfunction f($a, &$b, $c = array(1)) { return $a . $b; }\n",
    "<?php\nclass W extends B implements I {\n  const L = 1;\n  public $p = 'x';\n  private static $s;\n  public function m() { return $this->p; }\n}\n",
    "<?php\n$r = $wpdb->get_results(\"SELECT * FROM {$wpdb->prefix}t\");\n",
    "<?php\n$x = isset($a) ? $a : 'd';\n$y = $b ?: 'e';\n",
    "<?php\nunset($a);\nglobal $g;\nstatic $s = 0;\n",
    "<?php\ntry { f(); } catch (E $e) { g(); }\n",
    "<?php\n$f = function ($x) use (&$y) { return $x + $y; };\n",
    "<?php\nrequire_once dirname(__FILE__) . '/inc.php';\n",
    "<?php\n$a = (int)$_GET['n'];\n$b = !$a;\n$c = @file('x');\n",
    "<?php\nlist($a, $b) = each($arr);\n",
    "<?php\nnew Widget($a, 2);\nWidget::boot();\nWidget::$shared = 1;\n",
    "<?php\necho <<<EOT\nhello $name dear\nEOT;\n",
    "<?php\n$x = $a and $b;\n",
]


def normalize(source):
    return print_file(parse_source(source))


@pytest.mark.parametrize("source", SAMPLES, ids=range(len(SAMPLES)))
def test_roundtrip_stable(source):
    """print(parse(x)) is a fixed point of print∘parse."""
    once = normalize(source)
    twice = print_file(parse_source(once))
    assert once == twice


@pytest.mark.parametrize("source", SAMPLES, ids=range(len(SAMPLES)))
def test_roundtrip_preserves_statement_count(source):
    original = parse_source(source)
    reparsed = parse_source(print_file(original))
    assert len(reparsed.statements) == len(original.statements)


class TestExprPrinting:
    def test_method_call(self):
        tree = parse_source("<?php $wpdb->get_results($sql);")
        expr = tree.statements[0].expr
        assert print_expr(expr) == "$wpdb->get_results($sql)"

    def test_string_escaping(self):
        tree = parse_source("<?php $a = 'it\\'s';")
        printed = print_expr(tree.statements[0].expr)
        assert printed == "$a = 'it\\'s'"

    def test_interpolation_printing(self):
        tree = parse_source('<?php $a = "x $y z";')
        printed = print_expr(tree.statements[0].expr)
        assert "{$y}" in printed

    def test_none_prints_empty(self):
        assert print_expr(None) == ""

"""Tests for control-flow-graph construction."""

from repro.php import parse_source
from repro.php.cfg import build_cfg, build_file_cfgs


def cfg_of(source, name="<main>"):
    tree = parse_source("<?php\n" + source)
    return build_cfg(tree.statements, name)


class TestStraightLine:
    def test_single_block(self):
        cfg = cfg_of("$a = 1; $b = 2; echo $b;")
        reachable = cfg.reachable_blocks()
        blocks_with_stmts = [
            b for b in cfg.blocks_in_order() if b.statements and b.block_id in reachable
        ]
        assert len(blocks_with_stmts) == 1
        assert len(blocks_with_stmts[0].statements) == 3

    def test_entry_reaches_exit(self):
        cfg = cfg_of("$a = 1;")
        assert cfg.exit_id in cfg.reachable_blocks()

    def test_path_count_straight_line(self):
        assert cfg_of("$a = 1; $b = 2;").path_count() == 1


class TestBranching:
    def test_if_has_two_paths(self):
        assert cfg_of("if ($c) { $a = 1; }").path_count() == 2

    def test_if_else_two_paths(self):
        assert cfg_of("if ($c) { $a = 1; } else { $a = 2; }").path_count() == 2

    def test_elseif_chain_three_paths(self):
        source = "if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }"
        assert cfg_of(source).path_count() == 3

    def test_sequential_ifs_multiply(self):
        source = "if ($a) { $x = 1; } if ($b) { $y = 2; }"
        assert cfg_of(source).path_count() == 4

    def test_path_explosion_capped(self):
        source = "".join(f"if ($c{i}) {{ $x = {i}; }}\n" for i in range(25))
        assert cfg_of(source).path_count(limit=1000) == 1000

    def test_edge_labels(self):
        cfg = cfg_of("if ($c) { $a = 1; }")
        labels = {edge.label for edge in cfg.edges}
        assert "true" in labels and "false" in labels


class TestReturnsAndJumps:
    def test_return_edges_to_exit(self):
        cfg = cfg_of("if ($c) { return; } $a = 1;")
        return_edges = [e for e in cfg.edges if e.label == "return"]
        assert return_edges and all(e.target == cfg.exit_id for e in return_edges)

    def test_code_after_unconditional_return_unreachable(self):
        cfg = cfg_of("return; $dead = 1;")
        dead = cfg.unreachable_blocks()
        assert dead
        assert any(
            stmt.line for block in dead for stmt in block.statements
        )

    def test_exit_statement_terminates_flow(self):
        cfg = cfg_of("die(); $dead = 1;")
        assert cfg.unreachable_blocks()

    def test_break_targets_after_loop(self):
        cfg = cfg_of("while ($c) { break; } $after = 1;")
        break_edges = [e for e in cfg.edges if e.label == "break"]
        assert break_edges

    def test_continue_targets_header(self):
        cfg = cfg_of("while ($c) { continue; }")
        continue_edges = [e for e in cfg.edges if e.label == "continue"]
        loop_headers = [b.block_id for b in cfg.blocks.values() if b.label == "loop"]
        assert continue_edges and continue_edges[0].target in loop_headers


class TestLoops:
    def test_loop_has_back_edge(self):
        cfg = cfg_of("while ($c) { $a = 1; }")
        assert any(e.label == "back" for e in cfg.edges)

    def test_loop_paths_acyclic(self):
        # skip-loop and one-iteration are the acyclic paths
        assert cfg_of("while ($c) { $a = 1; }").path_count() >= 1

    def test_foreach_and_for_build(self):
        for source in (
            "foreach ($xs as $x) { echo $x; }",
            "for ($i = 0; $i < 3; $i++) { echo $i; }",
            "do { $a = 1; } while ($c);",
        ):
            cfg = cfg_of(source)
            assert cfg.exit_id in cfg.reachable_blocks()


class TestSwitch:
    def test_switch_paths(self):
        source = (
            "switch ($m) { case 1: $a = 1; break; "
            "case 2: $a = 2; break; default: $a = 3; }"
        )
        cfg = cfg_of(source)
        assert cfg.path_count() == 3

    def test_fallthrough_edge(self):
        source = "switch ($m) { case 1: $a = 1; case 2: $a = 2; }"
        cfg = cfg_of(source)
        assert any(e.label == "fall" for e in cfg.edges)

    def test_no_default_has_no_match_edge(self):
        cfg = cfg_of("switch ($m) { case 1: break; }")
        assert any(e.label == "no-match" for e in cfg.edges)


class TestTryCatch:
    def test_try_catch_paths(self):
        source = "try { $a = f(); } catch (E $e) { $a = 0; } echo $a;"
        cfg = cfg_of(source)
        assert cfg.path_count() >= 2
        assert any(e.label == "throw" for e in cfg.edges)

    def test_finally_always_on_path(self):
        source = "try { $a = 1; } catch (E $e) { $a = 2; } finally { $b = 3; }"
        cfg = cfg_of(source)
        finally_blocks = [b for b in cfg.blocks.values() if b.label == "finally"]
        assert len(finally_blocks) == 1
        assert finally_blocks[0].block_id in cfg.reachable_blocks()


class TestFileCfgs:
    def test_per_function_graphs(self):
        tree = parse_source(
            "<?php\n"
            "function f() { if ($c) { return 1; } return 2; }\n"
            "class W { public function m() { echo 1; } }\n"
            "$top = 1;\n"
        )
        graphs = build_file_cfgs(tree)
        assert set(graphs) == {"f", "W::m", "<main>"}
        assert graphs["f"].path_count() == 2

    def test_dot_rendering(self):
        cfg = cfg_of("if ($c) { $a = 1; }")
        dot = cfg.to_dot()
        assert dot.startswith("digraph") and "->" in dot

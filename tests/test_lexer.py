"""Unit tests for the PHP lexer (token_get_all equivalent)."""

import pytest

from repro.php import PhpLexError, tokenize, tokenize_significant
from repro.php.lexer import count_loc
from repro.php.tokens import TokenType


def types(source):
    return [token.type for token in tokenize_significant(source)]


def values(source):
    return [token.value for token in tokenize_significant(source)]


class TestHtmlAndTags:
    def test_pure_html(self):
        tokens = tokenize("<b>hello</b>")
        assert [t.type for t in tokens] == [TokenType.INLINE_HTML]
        assert tokens[0].value == "<b>hello</b>"

    def test_open_close_tags(self):
        tokens = tokenize("<p><?php $x; ?></p>")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.INLINE_HTML,
            TokenType.OPEN_TAG,
            TokenType.WHITESPACE,
            TokenType.VARIABLE,
            TokenType.CHAR,
            TokenType.WHITESPACE,
            TokenType.CLOSE_TAG,
            TokenType.INLINE_HTML,
        ]

    def test_short_echo_tag(self):
        tokens = tokenize("<?= $x ?>")
        assert tokens[0].type is TokenType.OPEN_TAG_WITH_ECHO

    def test_html_between_php_blocks(self):
        tokens = tokenize("<?php $a; ?>mid<?php $b;")
        html = [t for t in tokens if t.type is TokenType.INLINE_HTML]
        assert len(html) == 1 and html[0].value == "mid"


class TestVariablesAndIdentifiers:
    def test_variable_token(self):
        tokens = tokenize_significant("<?php $_POST;")
        assert tokens[1].type is TokenType.VARIABLE
        assert tokens[1].value == "$_POST"

    def test_keywords_case_insensitive(self):
        assert TokenType.IF in types("<?php IF (1) {}")
        assert TokenType.FUNCTION in types("<?php Function f() {}")

    def test_identifier(self):
        tokens = tokenize_significant("<?php htmlentities($x);")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "htmlentities"

    def test_variable_variable(self):
        kinds = types("<?php $$name;")
        assert kinds[1:3] == [TokenType.CHAR, TokenType.VARIABLE]


class TestLineNumbers:
    def test_lines_tracked_through_whitespace(self):
        source = "<?php\n$a;\n\n$b;"
        tokens = [t for t in tokenize_significant(source) if t.type is TokenType.VARIABLE]
        assert [t.line for t in tokens] == [2, 4]

    def test_lines_tracked_through_strings(self):
        source = "<?php\n$a = 'x\ny';\n$b;"
        last = [t for t in tokenize_significant(source) if t.value == "$b"][0]
        assert last.line == 4  # the string literal spans lines 2-3

    def test_lines_tracked_through_comments(self):
        source = "<?php\n/* a\nb\nc */\n$z;"
        token = [t for t in tokenize_significant(source) if t.value == "$z"][0]
        assert token.line == 5


class TestComments:
    def test_line_comment_slash(self):
        assert TokenType.COMMENT in [t.type for t in tokenize("<?php // hi\n$a;")]

    def test_line_comment_hash(self):
        assert TokenType.COMMENT in [t.type for t in tokenize("<?php # hi\n$a;")]

    def test_line_comment_stops_at_close_tag(self):
        tokens = tokenize("<?php // note ?>after")
        kinds = [t.type for t in tokens]
        assert TokenType.CLOSE_TAG in kinds
        assert TokenType.INLINE_HTML in kinds

    def test_block_comment(self):
        tokens = tokenize("<?php /* x */ $a;")
        comment = [t for t in tokens if t.type is TokenType.COMMENT][0]
        assert comment.value == "/* x */"

    def test_doc_comment(self):
        tokens = tokenize("<?php /** doc */ $a;")
        assert any(t.type is TokenType.DOC_COMMENT for t in tokens)

    def test_significant_strips_trivia(self):
        kinds = types("<?php /* c */ $a; // t")
        assert TokenType.COMMENT not in kinds
        assert TokenType.WHITESPACE not in kinds


class TestNumbers:
    @pytest.mark.parametrize(
        "literal,type_",
        [
            ("42", TokenType.LNUMBER),
            ("0x1F", TokenType.LNUMBER),
            ("0b101", TokenType.LNUMBER),
            ("3.14", TokenType.DNUMBER),
            (".5", TokenType.DNUMBER),
            ("1e10", TokenType.DNUMBER),
            ("2.5e-3", TokenType.DNUMBER),
        ],
    )
    def test_number_forms(self, literal, type_):
        tokens = tokenize_significant(f"<?php $x = {literal};")
        assert tokens[3].type is type_
        assert tokens[3].value == literal


class TestStrings:
    def test_single_quoted(self):
        tokens = tokenize_significant("<?php 'a\\'b';")
        assert tokens[1].type is TokenType.CONSTANT_ENCAPSED_STRING
        assert tokens[1].value == "'a\\'b'"

    def test_double_quoted_constant(self):
        tokens = tokenize_significant('<?php "plain";')
        assert tokens[1].type is TokenType.CONSTANT_ENCAPSED_STRING

    def test_double_quoted_interpolation(self):
        kinds = types('<?php "a $x b";')
        assert TokenType.ENCAPSED_AND_WHITESPACE in kinds
        assert TokenType.VARIABLE in kinds

    def test_complex_interpolation(self):
        kinds = types('<?php "{$obj->prop}";')
        assert TokenType.CURLY_OPEN in kinds
        assert TokenType.OBJECT_OPERATOR in kinds

    def test_simple_array_interpolation(self):
        vals = values('<?php "x $arr[3] y";')
        assert "$arr" in vals and "3" in vals

    def test_simple_property_interpolation(self):
        kinds = types('<?php "v $row->name!";')
        assert TokenType.OBJECT_OPERATOR in kinds

    def test_escaped_dollar_not_interpolated(self):
        tokens = tokenize_significant('<?php "a \\$x";')
        assert tokens[1].type is TokenType.CONSTANT_ENCAPSED_STRING

    def test_unterminated_string_raises(self):
        with pytest.raises(PhpLexError):
            tokenize("<?php 'oops")

    def test_unterminated_double_raises(self):
        with pytest.raises(PhpLexError):
            tokenize('<?php "oops')


class TestHeredoc:
    def test_heredoc_tokens(self):
        source = "<?php $q = <<<EOT\nline $x more\nEOT;\n"
        kinds = types(source)
        assert TokenType.START_HEREDOC in kinds
        assert TokenType.END_HEREDOC in kinds
        assert TokenType.VARIABLE in kinds

    def test_nowdoc_no_interpolation(self):
        source = "<?php $q = <<<'EOT'\nraw $x\nEOT;\n"
        tokens = tokenize_significant(source)
        body = [t for t in tokens if t.type is TokenType.ENCAPSED_AND_WHITESPACE]
        assert body and "$x" in body[0].value
        assert not any(t.type is TokenType.VARIABLE and t.value == "$x" for t in tokens)

    def test_unterminated_heredoc_raises(self):
        with pytest.raises(PhpLexError):
            tokenize("<?php $q = <<<EOT\nno end\n")


class TestOperatorsAndCasts:
    def test_object_operator(self):
        assert TokenType.OBJECT_OPERATOR in types("<?php $a->b;")

    def test_double_colon(self):
        assert TokenType.DOUBLE_COLON in types("<?php A::b();")

    def test_compound_assignments(self):
        assert TokenType.CONCAT_EQUAL in types("<?php $a .= 'x';")
        assert TokenType.PLUS_EQUAL in types("<?php $a += 1;")

    def test_comparison_operators(self):
        kinds = types("<?php 1 === 2; 1 !== 2; 1 <> 2;")
        assert TokenType.IS_IDENTICAL in kinds
        assert TokenType.IS_NOT_IDENTICAL in kinds
        assert kinds.count(TokenType.IS_NOT_EQUAL) == 1

    @pytest.mark.parametrize(
        "cast,type_",
        [
            ("(int)", TokenType.INT_CAST),
            ("( integer )", TokenType.INT_CAST),
            ("(bool)", TokenType.BOOL_CAST),
            ("(string)", TokenType.STRING_CAST),
            ("(array)", TokenType.ARRAY_CAST),
        ],
    )
    def test_casts(self, cast, type_):
        assert type_ in types(f"<?php $a = {cast}$b;")

    def test_paren_not_cast(self):
        kinds = types("<?php $a = (foo)($b);")
        assert TokenType.INT_CAST not in kinds
        assert kinds.count(TokenType.CHAR) >= 4  # parens survive


class TestLocCounter:
    def test_counts_code_lines_only(self):
        source = "<?php\n// comment\n\n$a = 1;\n/* block\n   more */\n$b = 2;\n"
        assert count_loc(source) == 3  # <?php, $a, $b

    def test_empty_source(self):
        assert count_loc("") == 0

    def test_star_continuation_lines_skipped(self):
        source = "<?php\n/**\n * doc\n */\n$a;\n"
        assert count_loc(source) == 2

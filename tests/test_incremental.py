"""Tests for diff-aware incremental rescans and SARIF baselines.

Covers the full chain: manifest planning and fallback triggers,
incremental-vs-cold finding parity, the ResultStore manifest/lineage
round-trip (including the legacy empty-fingerprint migration), SARIF
baseline classification (new / unchanged / absent), and the service
worker path that wires them together.
"""

import dataclasses
import json

import pytest

from repro.core import ModelCache, PhpSafe
from repro.core.incremental import (
    MANIFEST_SCHEMA,
    RescanStats,
    plan_rescan,
    plugin_file_digests,
)
from repro.core.model import PluginModel
from repro.core.results import finding_signatures
from repro.plugin import Plugin
from repro.service.sarif import (
    apply_baseline,
    new_result_count,
    to_sarif,
)
from repro.service.store import ResultStore, plugin_digest

# three decoupled roots: each echoes its own GET parameter, no shared
# globals/properties/statics, so a one-file change re-runs one root
FILE_A = "<?php\necho $_GET['a'];\n"
FILE_B = "<?php\necho $_GET['b'];\n"
FILE_C = "<?php\n$wpdb->query('D WHERE id=' . $_GET['c']);\n"


def three_file_plugin(name="tri", version="1.0"):
    return Plugin(
        name=name,
        version=version,
        files={"a.php": FILE_A, "b.php": FILE_B, "c.php": FILE_C},
    )


def mutate(plugin, path, extra):
    files = dict(plugin.files)
    files[path] = files[path] + extra
    return dataclasses.replace(plugin, files=files)


# ---------------------------------------------------------------------------
# PhpSafe.rescan: parity and reuse
# ---------------------------------------------------------------------------


class TestRescanParity:
    def test_zero_change_rescan_reuses_every_root(self):
        plugin = three_file_plugin()
        tool = PhpSafe(cache=ModelCache())
        report, manifest, _ = tool.rescan(plugin)
        again, _manifest2, stats = tool.rescan(plugin, manifest)
        assert stats.incremental
        assert stats.roots_reused == stats.roots_total
        assert stats.changed_files == []
        assert finding_signatures([again]) == finding_signatures([report])

    def test_one_file_change_reruns_one_root(self):
        plugin = three_file_plugin()
        tool = PhpSafe(cache=ModelCache())
        _report, manifest, _ = tool.rescan(plugin)
        updated = mutate(plugin, "b.php", "echo $_COOKIE['extra'];\n")
        warm, _manifest2, stats = tool.rescan(updated, manifest)
        cold = PhpSafe().analyze(updated)
        assert stats.incremental
        assert stats.changed_files == ["b.php"]
        assert stats.roots_reused == stats.roots_total - 1
        assert finding_signatures([warm]) == finding_signatures([cold])

    def test_fixed_file_drops_its_finding_only(self):
        plugin = three_file_plugin()
        tool = PhpSafe(cache=ModelCache())
        _report, manifest, _ = tool.rescan(plugin)
        files = dict(plugin.files)
        files["a.php"] = "<?php\necho esc_html($_GET['a']);\n"
        fixed = dataclasses.replace(plugin, files=files)
        warm, _manifest2, stats = tool.rescan(fixed, manifest)
        cold = PhpSafe().analyze(fixed)
        assert stats.incremental
        assert finding_signatures([warm]) == finding_signatures([cold])
        assert not any(f.file == "a.php" for f in warm.findings)
        assert any(f.file == "b.php" for f in warm.findings)

    def test_new_manifest_usable_for_next_rescan(self):
        plugin = three_file_plugin()
        tool = PhpSafe(cache=ModelCache())
        _r, manifest, _ = tool.rescan(plugin)
        v2 = mutate(plugin, "a.php", "echo $_GET['a2'];\n")
        _r2, manifest2, _ = tool.rescan(v2, manifest)
        v3 = mutate(v2, "c.php", "echo $_GET['c2'];\n")
        warm, _m3, stats = tool.rescan(v3, manifest2)
        cold = PhpSafe().analyze(v3)
        assert stats.incremental
        assert stats.changed_files == ["c.php"]
        assert finding_signatures([warm]) == finding_signatures([cold])

    def test_strict_mode_always_full(self):
        from repro.core.phpsafe import PhpSafeOptions

        tool = PhpSafe(options=PhpSafeOptions(recover=False))
        plugin = three_file_plugin()
        _report, manifest, _ = tool.rescan(plugin)
        _again, _m2, stats = tool.rescan(plugin, manifest)
        assert not stats.incremental
        assert stats.roots_reused == 0

    def test_coupled_roots_rerun_together(self):
        # writer.php taints a global that reader.php echoes: changing
        # the writer must re-run the reader too, and findings must
        # still match a cold scan
        plugin = Plugin(
            name="coupled",
            files={
                "reader.php": "<?php\nglobal $shared;\necho $shared;\n",
                "writer.php": "<?php\nglobal $shared;\n$shared = $_GET['w'];\n",
                "other.php": FILE_A,
            },
        )
        tool = PhpSafe(cache=ModelCache())
        _report, manifest, _ = tool.rescan(plugin)
        updated = mutate(plugin, "writer.php", "$shared = $_POST['w2'];\n")
        warm, _m2, stats = tool.rescan(updated, manifest)
        cold = PhpSafe().analyze(updated)
        assert finding_signatures([warm]) == finding_signatures([cold])
        if stats.incremental:
            # the untouched decoupled root is the only reusable one
            assert stats.roots_reused <= 1

    def test_stats_to_dict_round_trip(self):
        stats = RescanStats(
            roots_total=3, roots_reused=2, changed_files=["b.php"]
        )
        raw = stats.to_dict()
        assert raw["incremental"] is True
        assert raw["roots_total"] == 3
        assert raw["roots_reused"] == 2
        assert raw["changed_files"] == ["b.php"]
        assert raw["fallback_reason"] == ""


# ---------------------------------------------------------------------------
# plan_rescan: fallback triggers
# ---------------------------------------------------------------------------


class TestRescanPlanning:
    def manifest_for(self, plugin):
        tool = PhpSafe()
        _report, manifest, _ = tool.rescan(plugin)
        fingerprint = manifest["fingerprint"]
        model = PluginModel.build(plugin, recover=True)
        return manifest, fingerprint, model

    def test_no_manifest_is_full(self):
        plugin = three_file_plugin()
        _m, fingerprint, model = self.manifest_for(plugin)
        plan = plan_rescan(None, fingerprint, plugin_file_digests(plugin), model)
        assert plan.full and plan.reason == "no prior manifest"

    def test_schema_mismatch_is_full(self):
        plugin = three_file_plugin()
        manifest, fingerprint, model = self.manifest_for(plugin)
        manifest["schema"] = "something/else"
        plan = plan_rescan(
            manifest, fingerprint, plugin_file_digests(plugin), model
        )
        assert plan.full and "schema" in plan.reason

    def test_fingerprint_change_is_full(self):
        plugin = three_file_plugin()
        manifest, _fingerprint, model = self.manifest_for(plugin)
        plan = plan_rescan(
            manifest, "other-config", plugin_file_digests(plugin), model
        )
        assert plan.full and "configuration" in plan.reason

    def test_file_add_is_full(self):
        plugin = three_file_plugin()
        manifest, fingerprint, model = self.manifest_for(plugin)
        grown = dataclasses.replace(
            plugin, files={**plugin.files, "d.php": "<?php echo 1;\n"}
        )
        plan = plan_rescan(
            manifest, fingerprint, plugin_file_digests(grown), model
        )
        assert plan.full and plan.reason == "file set changed"

    def test_file_remove_is_full(self):
        plugin = three_file_plugin()
        manifest, fingerprint, model = self.manifest_for(plugin)
        files = dict(plugin.files)
        del files["c.php"]
        shrunk = dataclasses.replace(plugin, files=files)
        plan = plan_rescan(
            manifest, fingerprint, plugin_file_digests(shrunk), model
        )
        assert plan.full and plan.reason == "file set changed"

    def test_incomplete_prior_scan_is_full(self):
        plugin = three_file_plugin()
        manifest, fingerprint, model = self.manifest_for(plugin)
        manifest["complete"] = False
        plan = plan_rescan(
            manifest, fingerprint, plugin_file_digests(plugin), model
        )
        assert plan.full and "incomplete" in plan.reason

    def test_unchanged_plugin_reuses_all_roots(self):
        plugin = three_file_plugin()
        manifest, fingerprint, model = self.manifest_for(plugin)
        plan = plan_rescan(
            manifest, fingerprint, plugin_file_digests(plugin), model
        )
        assert not plan.full
        assert plan.changed_files == frozenset()
        assert plan.reuse_roots == frozenset(manifest["roots"])

    def test_manifest_schema_tag(self):
        plugin = three_file_plugin()
        manifest, _f, _m = self.manifest_for(plugin)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert set(manifest["files"]) == set(plugin.files)
        assert json.loads(json.dumps(manifest)) == manifest  # JSON-safe


# ---------------------------------------------------------------------------
# ResultStore: manifests, lineage, legacy keys
# ---------------------------------------------------------------------------


class TestManifestStore:
    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        manifest = {"schema": MANIFEST_SCHEMA, "files": {"a.php": "d1"}}
        store.put_manifest("digest-1", "cfg", manifest)
        assert store.get_manifest("digest-1", "cfg") == manifest
        assert store.get_manifest("digest-1", "other-cfg") is None
        assert store.get_manifest("digest-2", "cfg") is None

    def test_lineage_order_and_dedupe(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_lineage("demo", "d1")
        store.record_lineage("demo", "d2")
        store.record_lineage("demo", "d1")  # resubmission moves to end
        assert store.lineage("demo") == ["d2", "d1"]
        assert store.lineage("unknown") == []

    def test_latest_manifest_walks_lineage(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_lineage("demo", "d1")
        store.record_lineage("demo", "d2")
        store.record_lineage("demo", "d3")
        store.put_manifest("d1", "cfg", {"from": "d1"})
        store.put_manifest("d2", "cfg", {"from": "d2"})
        # d3 has no manifest; the rescan of d3 must match d2
        assert store.latest_manifest("demo", "cfg", exclude_digest="d3") == {
            "from": "d2"
        }
        # rescanning d2 itself must not match its own manifest
        assert store.latest_manifest("demo", "cfg", exclude_digest="d2") == {
            "from": "d1"
        }
        assert store.latest_manifest("demo", "other-cfg") is None

    def test_result_key_hashes_empty_fingerprint(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = plugin_digest(Plugin(name="x", files={"a.php": FILE_A}))
        # the key namespace must be uniform: an empty fingerprint is
        # hashed exactly like any other, never the raw digest
        assert store.result_key(digest, "") != digest
        assert store.result_key(digest, "") != store.result_key(digest, "cfg")

    def test_legacy_raw_digest_result_is_migrated(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = "ab" + "0" * 62
        legacy_path = store._shard_path(store._results_dir, digest)
        document = {"schema": "legacy", "outcome": "ok"}
        store._write_json(legacy_path, document)
        # served through the empty-fingerprint lookup...
        assert store.get_result(digest, "") == document
        # ...and physically moved to the hashed key
        import os

        assert not os.path.exists(legacy_path)
        hashed = store._shard_path(
            store._results_dir, store.result_key(digest, "")
        )
        assert os.path.exists(hashed)
        assert store.get_result(digest, "") == document


# ---------------------------------------------------------------------------
# SARIF baselines
# ---------------------------------------------------------------------------


class TestSarifBaseline:
    def reports_for(self, source_by_file, name="base", version="1.0"):
        plugin = Plugin(name=name, version=version, files=dict(source_by_file))
        return [PhpSafe().analyze(plugin)]

    def test_unchanged_findings_classified_unchanged(self):
        reports = self.reports_for({"vuln.php": FILE_A})
        baseline = to_sarif(reports)
        document = to_sarif(reports)
        counts = apply_baseline(document, baseline)
        assert counts == {"new": 0, "unchanged": 1, "absent": 0}
        assert new_result_count(document) == 0
        states = [
            result["baselineState"]
            for run in document["runs"]
            for result in run["results"]
        ]
        assert states == ["unchanged"]

    def test_new_finding_classified_new(self):
        baseline = to_sarif(self.reports_for({"vuln.php": FILE_A}))
        document = to_sarif(
            self.reports_for({"vuln.php": FILE_A + "echo $_POST['n'];\n"})
        )
        counts = apply_baseline(document, baseline)
        assert counts["new"] == 1
        assert counts["unchanged"] == 1
        assert counts["absent"] == 0
        assert new_result_count(document) == 1

    def test_fixed_finding_classified_absent(self):
        baseline = to_sarif(
            self.reports_for({"vuln.php": FILE_A, "other.php": FILE_B})
        )
        document = to_sarif(
            self.reports_for(
                {"vuln.php": "<?php echo esc_html($_GET['a']);\n",
                 "other.php": FILE_B}
            )
        )
        counts = apply_baseline(document, baseline)
        assert counts == {"new": 0, "unchanged": 1, "absent": 1}
        # absent results are appended so reviewers see what went away
        states = sorted(
            result["baselineState"]
            for run in document["runs"]
            for result in run["results"]
        )
        assert states == ["absent", "unchanged"]
        assert new_result_count(document) == 0

    def test_baseline_matches_across_versions(self):
        # same finding, new plugin version: the version-qualified slug
        # inside the fingerprint must not break the match
        baseline = to_sarif(self.reports_for({"v.php": FILE_A}, version="1.0"))
        document = to_sarif(self.reports_for({"v.php": FILE_A}, version="2.0"))
        counts = apply_baseline(document, baseline)
        assert counts == {"new": 0, "unchanged": 1, "absent": 0}

    def test_empty_baseline_marks_everything_new(self):
        document = to_sarif(self.reports_for({"v.php": FILE_A}))
        counts = apply_baseline(document, {"runs": []})
        assert counts["new"] == 1
        assert counts["unchanged"] == 0
        assert new_result_count(document) == 1

    def test_result_without_state_counts_as_new(self):
        # fail-safe: a result the classifier never saw is gated as new
        document = to_sarif(self.reports_for({"v.php": FILE_A}))
        assert new_result_count(document) == 1


# ---------------------------------------------------------------------------
# Service: lineage-driven rescans end to end
# ---------------------------------------------------------------------------


class TestServiceRescan:
    def test_resubmission_rescans_incrementally(self, tmp_path):
        from repro.service import AnalysisService

        service = AnalysisService(
            data_dir=str(tmp_path / "svc"), jobs=1, isolation="thread"
        )
        service.start()
        try:
            v1 = three_file_plugin(name="lineage-demo", version="1.0")
            payload = {
                "name": v1.name,
                "version": v1.version,
                "files": dict(v1.files),
            }
            code, first = service.submit(payload)
            assert code in (200, 202)
            self.wait(service, first["id"])
            v2 = mutate(v1, "b.php", "echo $_COOKIE['extra'];\n")
            code, second = service.submit(
                {"name": v2.name, "version": "1.1", "files": dict(v2.files)}
            )
            assert code in (200, 202)
            self.wait(service, second["id"])
            _code, status = service.job_status(second["id"])
            rescan = status["result"]["rescan"]
            assert rescan["incremental"] is True
            assert rescan["changed_files"] == ["b.php"]
            assert rescan["roots_reused"] >= 1
            # the lineage now records both digests, newest last
            assert len(service.store.lineage("lineage-demo")) == 2
        finally:
            service.shutdown()

    @staticmethod
    def wait(service, job_id, timeout=60.0):
        import time

        deadline = time.time() + timeout
        while time.time() < deadline:
            _code, status = service.job_status(job_id)
            if status.get("state") in ("done", "failed"):
                assert status["state"] == "done", status
                return status
            time.sleep(0.02)
        pytest.fail("job did not finish in time")

    def test_sarif_baseline_endpoint(self, tmp_path):
        from repro.service import AnalysisService

        service = AnalysisService(
            data_dir=str(tmp_path / "svc"), jobs=1, isolation="thread"
        )
        service.start()
        try:
            v1 = three_file_plugin(name="base-demo", version="1.0")
            _c, first = service.submit(
                {"name": v1.name, "version": "1.0", "files": dict(v1.files)}
            )
            self.wait(service, first["id"])
            v2 = mutate(v1, "b.php", "echo $_COOKIE['extra'];\n")
            _c, second = service.submit(
                {"name": v2.name, "version": "1.1", "files": dict(v2.files)}
            )
            self.wait(service, second["id"])
            code, document = service.sarif_baseline(second["id"])
            assert code == 200
            baseline = document["properties"]["baseline"]
            assert baseline["new"] == 1
            assert baseline["absent"] == 0
            assert document["properties"]["newResults"] == 1
        finally:
            service.shutdown()

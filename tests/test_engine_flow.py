"""Engine behaviour: control flow — branches joined, loops, includes."""

from repro.config.vulnerability import VulnKind

from tests.helpers import analyze, findings_of


def xss(source):
    return [f for f in findings_of(source) if f.kind is VulnKind.XSS]


class TestBranchJoin:
    def test_taint_in_one_branch_survives_join(self):
        source = "<?php $x = 'safe'; if ($c) { $x = $_GET['a']; } echo $x;"
        assert xss(source)

    def test_clean_assignment_in_branch_does_not_kill(self):
        # "the analysis takes into account all possible paths" — the
        # untainted else-path must not erase the tainted then-path
        source = (
            "<?php $x = $_GET['a'];"
            "if ($c) { $x = 'safe'; } echo $x;"
        )
        assert xss(source)

    def test_clean_on_both_paths_is_clean(self):
        source = (
            "<?php $x = $_GET['a'];"
            "if ($c) { $x = 'safe'; } else { $x = 'also'; } echo $x;"
        )
        assert not xss(source)

    def test_elseif_branches_joined(self):
        source = (
            "<?php $x = 'safe';"
            "if ($a) { $x = 1; } elseif ($b) { $x = $_COOKIE['c']; } echo $x;"
        )
        assert xss(source)

    def test_switch_cases_joined(self):
        source = (
            "<?php $x = 'safe'; switch ($m) {"
            "case 1: $x = 'ok'; break;"
            "case 2: $x = $_GET['v']; break; } echo $x;"
        )
        assert xss(source)

    def test_ternary_branches_joined(self):
        assert xss("<?php $x = $c ? 'safe' : $_GET['a']; echo $x;")

    def test_short_ternary(self):
        assert xss("<?php $x = $_GET['a'] ?: 'fallback'; echo $x;")

    def test_try_catch_joined(self):
        source = (
            "<?php $x = 'safe';"
            "try { $x = $_GET['a']; } catch (Exception $e) { $x = 'e'; } echo $x;"
        )
        assert xss(source)

    def test_condition_itself_evaluated(self):
        # assignment inside a condition still happens
        assert xss("<?php if ($x = $_GET['a']) { } echo $x;")


class TestLoops:
    def test_while_body_analyzed(self):
        assert xss("<?php while ($c) { echo $_GET['x']; }")

    def test_loop_carried_taint(self):
        # taint flows $a -> $b across iterations (needs two passes)
        source = "<?php $a = $_GET['x']; while ($c) { echo $b; $b = $a; }"
        assert xss(source)

    def test_accumulator_pattern(self):
        source = "<?php $out = ''; foreach ($ks as $k) { $out .= $_GET['v']; } echo $out;"
        assert xss(source)

    def test_for_loop_update_evaluated(self):
        assert xss("<?php for ($i = 0; $i < 3; $i = $_GET['n']) { } echo $i;")

    def test_do_while(self):
        assert xss("<?php do { echo $_POST['x']; } while ($c);")

    def test_foreach_value_inherits_subject_taint(self):
        source = "<?php $rows = mysql_fetch_array($r); foreach ($rows as $v) { echo $v; }"
        assert xss(source)

    def test_foreach_key_inherits_subject_taint(self):
        source = "<?php $data = $_POST['all']; foreach ($data as $k => $v) { echo $k; }"
        assert xss(source)

    def test_foreach_over_clean_is_clean(self):
        assert not xss("<?php foreach (array(1, 2) as $v) { echo $v; }")


class TestIncludes:
    def test_include_inlines_target_file(self):
        from repro.core import PhpSafe
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={
                "main.php": "<?php $id = $_GET['id']; include 'show.php';",
                "show.php": "<?php echo $id;",
            },
        )
        report = PhpSafe().analyze(plugin)
        # the sink fires when show.php is inlined with $id tainted
        assert any(f.file == "show.php" for f in report.findings)

    def test_include_cycle_terminates(self):
        from repro.core import PhpSafe
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={
                "a.php": "<?php include 'b.php'; echo $_GET['x'];",
                "b.php": "<?php include 'a.php';",
            },
        )
        report = PhpSafe().analyze(plugin)
        assert report.findings  # terminated and still found the flow

    def test_dirname_file_idiom_resolves(self):
        from repro.core import PhpSafe
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={
                "admin/panel.php": (
                    "<?php $v = $_GET['v'];"
                    "require_once(dirname(__FILE__) . '/../inc/render.php');"
                ),
                "inc/render.php": "<?php echo $v;",
            },
        )
        report = PhpSafe().analyze(plugin)
        assert any(f.file == "inc/render.php" for f in report.findings)


class TestGlobals:
    def test_global_statement_links_scopes(self):
        source = (
            "<?php $cfg = $_GET['c'];"
            "function show() { global $cfg; echo $cfg; } show();"
        )
        assert xss(source)

    def test_global_write_visible_at_main(self):
        source = (
            "<?php function init() { global $v; $v = $_POST['x']; }"
            "init(); echo $v;"
        )
        assert xss(source)

    def test_local_does_not_leak_to_global(self):
        source = (
            "<?php function f() { $loc = $_GET['x']; } f(); echo $loc;"
        )
        assert not xss(source)


class TestRobustness:
    def test_parse_failure_recorded_not_raised(self):
        report = analyze("<?php $a = ;")
        assert report.failures
        assert not report.findings

    def test_other_files_still_analyzed_after_failure(self):
        from repro.core import PhpSafe
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={"bad.php": "<?php $a = ;", "good.php": "<?php echo $_GET['x'];"},
        )
        report = PhpSafe().analyze(plugin)
        assert report.findings
        # default mode recovers bad.php (recorded incident, no skip)
        assert report.failed_files == []
        assert any(
            incident.file == "bad.php" and incident.recovered
            for incident in report.incidents
        )

    def test_other_files_still_analyzed_after_failure_strict(self):
        from repro.core import PhpSafe, PhpSafeOptions
        from repro.plugin import Plugin

        plugin = Plugin(
            name="p",
            files={"bad.php": "<?php $a = ;", "good.php": "<?php echo $_GET['x'];"},
        )
        report = PhpSafe(options=PhpSafeOptions(recover=False)).analyze(plugin)
        assert report.findings
        assert report.failed_files == ["bad.php"]

    def test_include_budget_failure(self):
        from repro.core import PhpSafe, PhpSafeOptions
        from repro.plugin import Plugin

        big = "<?php\n" + "\n".join(
            f"function pad_{i}() {{ return '{'x' * 100}'; }}" for i in range(300)
        )
        plugin = Plugin(
            name="p",
            files={
                "huge/lib.php": big,
                "panel.php": "<?php include 'huge/lib.php'; echo $_GET['x'];",
            },
        )
        options = PhpSafeOptions(include_budget=10_000)
        report = PhpSafe(options=options).analyze(plugin)
        assert "panel.php" in report.failed_files
        # the flow inside the failed file is missed (paper Section V.E)
        assert not any(f.file == "panel.php" for f in report.findings)

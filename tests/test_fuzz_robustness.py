"""Mutation-fuzz smoke test for the fault-tolerant pipeline.

Mutates real corpus sources — truncation at a random byte, deleting a
brace, splicing two files together — and asserts the recovering
:class:`PhpSafe` never raises: every mutant yields a
:class:`ToolReport`, with the damage surfaced as typed incidents
rather than exceptions.
"""

import random

import pytest

from repro.core import PhpSafe, ToolReport
from repro.corpus import build_corpus

SEED = 0x5AFE
MUTANTS_PER_STRATEGY = 12


def corpus_sources():
    corpus = build_corpus("2012", scale=0.05)
    sources = []
    for plugin in corpus.plugins:
        for path, source in sorted(plugin.files.items()):
            if path.endswith(".php") and len(source) > 40:
                sources.append(source)
    assert len(sources) >= 2, "corpus too small to fuzz"
    return sources


def truncate(rng, sources):
    source = rng.choice(sources)
    cut = rng.randrange(1, len(source))
    return source[:cut]


def drop_brace(rng, sources):
    source = rng.choice(sources)
    positions = [i for i, ch in enumerate(source) if ch in "{}"]
    if not positions:
        return source + "{"
    at = rng.choice(positions)
    return source[:at] + source[at + 1 :]


def splice(rng, sources):
    first = rng.choice(sources)
    second = rng.choice(sources)
    cut_a = rng.randrange(1, len(first))
    cut_b = rng.randrange(1, len(second))
    return first[:cut_a] + second[cut_b:]


STRATEGIES = [truncate, drop_brace, splice]


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.__name__)
def test_mutants_never_raise(strategy):
    rng = random.Random(SEED + STRATEGIES.index(strategy))
    sources = corpus_sources()
    tool = PhpSafe()
    for trial in range(MUTANTS_PER_STRATEGY):
        mutant = strategy(rng, sources)
        report = tool.analyze_source(mutant, f"mutant_{trial}.php")
        assert isinstance(report, ToolReport)
        # a damaged file either recovers (incidents) or is skipped
        # (files_skipped) — never a crash, never silent on real damage
        assert report.files_analyzed + report.files_skipped >= 1


def test_empty_and_binary_inputs():
    tool = PhpSafe()
    for blob in ("", "\x00\x01\x02", "<?php", "<?php \xff\xfe"):
        report = tool.analyze_source(blob, "weird.php")
        assert isinstance(report, ToolReport)

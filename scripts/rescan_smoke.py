#!/usr/bin/env python
"""End-to-end smoke test for the incremental-rescan + baseline flow.

Exercises the diff-aware workflow CI cares about, through the real CLI:

1. write a generated-corpus plugin to disk and export its SARIF report
   (``phpsafe report --format sarif``) as the baseline,
2. rescan unchanged with ``--baseline --fail-on new`` and prove the
   gate passes (every finding is ``unchanged``),
3. mutate one file with a fresh tainted echo, rescan, and prove the
   gate now fails with exactly the new finding (pre-existing findings
   do not fail it),
4. revert the mutation and prove the gate passes again,
5. drive ``PhpSafe.rescan`` directly on the mutated plugin and prove
   the incremental path reused prior analysis units and produced the
   same findings as a cold scan.

Stdlib only; run from the repo root::

    python scripts/rescan_smoke.py
"""

import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core import ModelCache, PhpSafe  # noqa: E402
from repro.core.results import finding_signatures  # noqa: E402
from repro.corpus.generator import build_corpus  # noqa: E402


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        raise SystemExit(f"rescan smoke failed at: {label}")


def pick_plugin():
    """A corpus plugin that has findings (the gate needs something to
    hold steady) and more than one analysis root."""
    corpus = build_corpus("2014", scale=0.1)
    candidates = [
        plugin
        for plugin in corpus.plugins
        if len(plugin.files) >= 3 and PhpSafe().analyze(plugin).findings
    ]
    check(bool(candidates), "corpus offers a multi-file plugin with findings")
    return max(candidates, key=lambda plugin: len(plugin.files))


def main():
    plugin = pick_plugin()
    workdir = tempfile.mkdtemp(prefix="rescan-smoke-")
    plugin_dir = os.path.join(workdir, "plugin")
    plugin.write_to(workdir)
    written = [
        entry for entry in os.listdir(workdir)
        if os.path.isdir(os.path.join(workdir, entry))
    ]
    plugin_dir = os.path.join(workdir, written[0])
    baseline = os.path.join(workdir, "baseline.sarif")

    # 1. baseline SARIF export through the CLI
    code = cli_main(
        ["report", plugin_dir, "--format", "sarif", "--out", baseline]
    )
    check(code == 0, "baseline SARIF export succeeds")
    with open(baseline, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    check(document.get("version") == "2.1.0", "baseline is SARIF 2.1.0")

    # 2. unchanged rescan: old findings must not fail the fail-on-new gate
    code = cli_main(
        ["scan", plugin_dir, "--baseline", baseline, "--fail-on", "new"]
    )
    check(code == 0, "unchanged plugin passes --fail-on new")
    code = cli_main(["scan", plugin_dir, "--baseline", baseline])
    check(code == 1, "unchanged plugin still fails --fail-on any")

    # 3. one-file mutation introduces exactly one new finding
    target = min(
        path for path in plugin.files
        if path.endswith(".php") and "legacy" not in path
    )
    target_path = os.path.join(plugin_dir, target)
    with open(target_path, "a", encoding="utf-8") as handle:
        handle.write("\n<?php echo $_GET['rescan_smoke_mutation'];\n")
    code = cli_main(
        ["scan", plugin_dir, "--baseline", baseline, "--fail-on", "new"]
    )
    check(code == 1, "mutated plugin fails --fail-on new (new finding)")

    # 4. reverting the mutation makes the gate pass again
    with open(target_path, "r", encoding="utf-8") as handle:
        source = handle.read()
    with open(target_path, "w", encoding="utf-8") as handle:
        handle.write(source.replace("\n<?php echo $_GET['rescan_smoke_mutation'];\n", ""))
    code = cli_main(
        ["scan", plugin_dir, "--baseline", baseline, "--fail-on", "new"]
    )
    check(code == 0, "reverted plugin passes --fail-on new again")

    # 5. the incremental engine path itself: manifest-driven rescan of a
    #    one-file change reuses units and matches the cold scan exactly
    tool = PhpSafe(cache=ModelCache())
    _report, manifest, _stats = tool.rescan(plugin)
    mutated_files = dict(plugin.files)
    mutated_files[target] += "\n<?php echo $_GET['rescan_smoke_mutation'];\n"
    import dataclasses

    mutated = dataclasses.replace(plugin, files=mutated_files)
    warm_report, _manifest2, stats = tool.rescan(mutated, manifest)
    cold_report = PhpSafe().analyze(mutated)
    check(stats.incremental, "rescan took the incremental path")
    check(stats.roots_reused > 0, "rescan reused prior analysis roots")
    check(
        finding_signatures([warm_report]) == finding_signatures([cold_report]),
        "incremental findings identical to cold scan",
    )
    print(
        f"rescan smoke ok — {stats.roots_reused}/{stats.roots_total} roots"
        f" reused on a one-file change"
    )


if __name__ == "__main__":
    main()

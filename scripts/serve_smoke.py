#!/usr/bin/env python
"""End-to-end smoke test for the ``phpsafe serve`` daemon.

Exercises the full out-of-process path CI cares about:

1. start ``python -m repro serve`` as a subprocess,
2. wait for ``/healthz``,
3. submit a generated-corpus plugin over HTTP and poll it to ``done``,
4. fetch the SARIF report and validate its 2.1.0 shape,
5. load the queue with more submissions, SIGTERM the daemon mid-run,
   and prove the graceful sequence lost zero accepted jobs (every row
   in the sqlite spool is ``done`` or ``queued``, never ``running``).

Stdlib only; run from the repo root::

    python scripts/serve_smoke.py
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.corpus.generator import build_corpus  # noqa: E402

BASE_TIMEOUT = 120.0


def api(base, path, payload=None, method=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def wait_health(base, deadline):
    while time.time() < deadline:
        try:
            status, body = api(base, "/healthz")
            if status == 200 and body.get("status") == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("daemon never became healthy")


def wait_done(base, job_id, deadline):
    while time.time() < deadline:
        status, body = api(base, f"/v1/scans/{job_id}")
        check(status == 200, f"status poll returned {status}")
        if body["state"] in ("done", "failed"):
            return body
        time.sleep(0.2)
    raise SystemExit(f"job {job_id} never finished")


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def validate_sarif(document):
    check(document.get("version") == "2.1.0", "SARIF version is 2.1.0")
    check("sarif-schema-2.1.0" in document.get("$schema", ""), "schema URI present")
    runs = document.get("runs")
    check(isinstance(runs, list) and len(runs) == 1, "exactly one run")
    driver = runs[0]["tool"]["driver"]
    check(driver.get("name"), "driver has a name")
    rule_ids = {rule["id"] for rule in driver.get("rules", [])}
    results = runs[0].get("results", [])
    check(isinstance(results, list), "results is a list")
    for result in results:
        check(result["ruleId"] in rule_ids, f"result rule {result['ruleId']} declared")
        location = result["locations"][0]["physicalLocation"]
        check(location["artifactLocation"]["uri"], "result has a file")
        check(location["region"]["startLine"] >= 1, "result has a line")
        check(
            "phpsafe/findingSignature/v1" in result.get("partialFingerprints", {}),
            "result carries the canonical fingerprint",
        )
    return len(results)


def payload_for(plugin):
    return {
        "name": plugin.name,
        "version": plugin.version,
        "files": dict(plugin.files),
    }


def main():
    corpus = build_corpus("2014", scale=0.05)
    plugins = corpus.plugins
    print(f"corpus: {len(plugins)} plugins at scale 0.05")

    data_dir = tempfile.mkdtemp(prefix="phpsafe-smoke-")
    port = int(os.environ.get("SMOKE_PORT", "8797"))
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--data-dir",
            data_dir,
            "--jobs",
            "2",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.time() + BASE_TIMEOUT
        wait_health(base, deadline)
        print("daemon healthy, submitting a corpus plugin")

        status, body = api(base, "/v1/scans", payload_for(plugins[0]))
        check(status == 202, f"submission accepted (got {status})")
        job = wait_done(base, body["id"], deadline)
        check(job["state"] == "done", f"scan finished done (got {job['state']})")

        status, sarif = api(base, f"/v1/scans/{job['id']}/sarif")
        check(status == 200, "SARIF endpoint returns 200")
        results = validate_sarif(sarif)
        print(f"  SARIF validated: {results} result(s)")

        status, metrics = api(base, "/metrics")
        check(status == 200, "metrics endpoint returns 200")
        check(
            metrics.get("schema") == "repro.batch.telemetry/v7",
            "metrics on telemetry schema v6",
        )
        check("service" in metrics and "queue" in metrics, "service + queue sections")

        # load the queue, then SIGTERM mid-run: graceful drain must not
        # lose a single accepted job
        accepted = 1  # the first submission above
        for plugin in plugins[1:]:
            status, body = api(base, "/v1/scans", payload_for(plugin))
            check(status in (200, 202), f"busy submission accepted ({plugin.name})")
            if status == 202 and not body.get("coalesced"):
                accepted += 1
        print(f"{accepted} accepted jobs in flight; sending SIGTERM")
        daemon.send_signal(signal.SIGTERM)
        output, _ = daemon.communicate(timeout=BASE_TIMEOUT)
        check(daemon.returncode == 0, f"daemon exited 0 (got {daemon.returncode})")
        check("service stopped" in output, "daemon announced graceful stop")

        conn = sqlite3.connect(os.path.join(data_dir, "jobs.sqlite"))
        rows = dict(
            conn.execute("SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        )
        conn.close()
        total = sum(rows.values())
        check(rows.get("running", 0) == 0, "no job stranded in running")
        check(rows.get("failed", 0) == 0, f"no job failed ({rows})")
        check(
            total >= accepted,
            f"all {accepted} accepted jobs persisted (spool has {total})",
        )
        print(f"queue after SIGTERM: {rows}")
        print("PASS: serve smoke complete")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke for memory-bounded streaming at stress scale.

Runs the smallest stress tier (``scale-smoke``) in both evaluation
modes in isolated spawn subprocesses, asserting:

1. streaming peak RSS stays under the tier's configured bound
   (``StressTier.streaming_rss_mb``) — the hard RSS ceiling;
2. both modes report the tier's expected seeded finding count;
3. streaming and accumulating finding *signatures* are identical on
   the paper corpus at scale 0.25 (the acceptance-criteria parity
   proof, re-run here on every push);

and writes the measurements into ``BENCH_scale.json`` (uploaded as a CI
artifact).  The full three-tier bench, including the ≥1M-LOC tier, is
run via ``phpsafe bench scale``; this job keeps the per-push cost to
the smallest tier.

Stdlib only; run from the repo root::

    python scripts/scale_smoke.py [--out BENCH_scale.json]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_scale.json", help="bench file to merge into"
    )
    parser.add_argument(
        "--parity-scale", type=float, default=0.25,
        help="paper-corpus scale of the parity proof (default: 0.25)",
    )
    args = parser.parse_args(argv)

    from repro.benchgate import calibration, merge_bench
    from repro.benchscale import run_parity, run_scale_bench
    from repro.corpus.stress import get_tier

    tier = get_tier("scale-smoke")
    failures = []

    section = run_scale_bench(["scale-smoke"], parity=False)
    row = section["tiers"]["scale-smoke"]
    streaming = row["streaming"]
    accumulating = row["accumulating"]
    print(
        f"scale-smoke: streaming {streaming['peak_rss_mb']} MB peak RSS "
        f"(bound {tier.streaming_rss_mb} MB), "
        f"{streaming['loc_per_second']} LOC/s; "
        f"accumulating {accumulating['peak_rss_mb']} MB peak RSS"
    )

    if streaming["peak_rss_mb"] > tier.streaming_rss_mb:
        failures.append(
            f"streaming peak RSS {streaming['peak_rss_mb']} MB exceeds the "
            f"{tier.streaming_rss_mb} MB ceiling"
        )
    for mode, measured in (("streaming", streaming), ("accumulating", accumulating)):
        if measured["findings"] != tier.expected_findings:
            failures.append(
                f"{mode} found {measured['findings']} findings, expected "
                f"{tier.expected_findings}"
            )

    print(f"parity: paper corpus at scale {args.parity_scale} ...", flush=True)
    parity = run_parity(scale=args.parity_scale)
    section["parity"] = parity
    print(
        f"parity: {parity['streaming_findings']} streaming vs "
        f"{parity['accumulating_findings']} accumulating findings over "
        f"{parity['loc']} LOC — "
        + ("identical" if parity["identical"] else "DIVERGED")
    )
    if not parity["identical"]:
        failures.append(
            "streaming and accumulating finding signatures diverge: "
            f"only-streaming={parity['only_streaming']} "
            f"only-accumulating={parity['only_accumulating']}"
        )

    merge_bench(args.out, section, quick=True, calibration_ops=calibration())
    print(f"bench written to {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}")
    print("scale smoke:", "FAIL" if failures else "ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Fail CI when a BENCH_*.json stage regresses below its floor.

Reads the ``speedup_vs_baseline_normalized`` section that
``repro.benchgate.merge_bench`` derives (each side's seconds scaled by
its own ``calibration_ops_per_second`` before the ratio, so the
runner's raw speed cancels out) and exits non-zero when the requested
stage falls under ``--min-normalized``.  The perf-smoke job uses it to
pin the analyzer line of ``BENCH_substrate.json`` at its pre-IR value:
the IR evaluator may only ever move that number up.

Stdlib only; run from the repo root::

    python scripts/perf_check.py --bench BENCH_substrate.json \
        --stage analyzer --min-normalized 2.29
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True, help="BENCH_*.json to check")
    parser.add_argument(
        "--stage", required=True,
        help="stage name, e.g. 'analyzer' for analyzer_seconds",
    )
    parser.add_argument(
        "--min-normalized", type=float, required=True,
        help="minimum acceptable calibration-normalized speedup vs baseline",
    )
    args = parser.parse_args(argv)

    with open(args.bench, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    normalized = data.get("speedup_vs_baseline_normalized") or {}
    value = normalized.get(args.stage)
    if value is None:
        print(
            f"perf-check: {args.bench} has no normalized speedup for stage "
            f"{args.stage!r} (has: {sorted(normalized)}); was the baseline "
            "recorded with a calibration figure?",
            file=sys.stderr,
        )
        return 2
    raw = (data.get("speedup_vs_baseline") or {}).get(args.stage)
    print(
        f"perf-check: {args.stage} normalized speedup {value}x "
        f"(raw {raw}x, floor {args.min_normalized}x)"
    )
    if value < args.min_normalized:
        print(
            f"perf-check: FAIL — {args.stage} regressed below "
            f"{args.min_normalized}x",
            file=sys.stderr,
        )
        return 1
    print("perf-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Fleet chaos harness entry point (CI's ``fleet-chaos-smoke`` job).

Thin wrapper over :mod:`repro.service.chaos`: spins up N real
``phpsafe serve`` subprocesses behind a coordinator, replays burst +
duplicate traffic while SIGKILLing one node mid-job and SIGSTOPping
another, asserts zero lost/duplicated results against a serial-scan
oracle, and records sustained jobs/min plus p50/p99 queue wait into
``BENCH_service.json``.

Run from the repo root::

    python scripts/fleet_chaos.py --nodes 3 --kill 1 --stall 1 --quick
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.chaos import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
